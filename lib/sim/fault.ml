module Spider = Msts_platform.Spider
module Chain = Msts_platform.Chain

type event =
  | Slow_proc of { address : Spider.address; factor : int }
  | Slow_link of { address : Spider.address; factor : int }
  | Drop_transfer of { address : Spider.address; penalty : int }
  | Crash_proc of Spider.address

type timed = { at : int; event : event }

type trace = timed list

let normalize trace = List.stable_sort (fun a b -> Int.compare a.at b.at) trace

let event_to_string = function
  | Slow_proc { address = { leg; depth }; factor } ->
      Printf.sprintf "slow-proc %d %d %d" leg depth factor
  | Slow_link { address = { leg; depth }; factor } ->
      Printf.sprintf "slow-link %d %d %d" leg depth factor
  | Drop_transfer { address = { leg; depth }; penalty } ->
      Printf.sprintf "drop %d %d %d" leg depth penalty
  | Crash_proc { leg; depth } -> Printf.sprintf "crash %d %d" leg depth

let timed_to_string { at; event } = Printf.sprintf "%d %s" at (event_to_string event)

let to_string trace =
  String.concat "" (List.map (fun t -> timed_to_string t ^ "\n") trace)

let pp ppf trace =
  List.iter (fun t -> Format.fprintf ppf "%s@," (timed_to_string t)) trace

(* ---------- parsing ---------- *)

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> (i + 1, String.trim line))
    |> List.filter (fun (_, line) ->
           line <> "" && not (String.length line > 0 && line.[0] = '#'))
  in
  let parse_line (lineno, line) =
    let err msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | at :: kind :: rest -> (
        match int_of_string_opt at with
        | None -> err "expected an integer time first"
        | Some at when at < 0 -> err "negative time"
        | Some at -> (
            let ints = List.map int_of_string_opt rest in
            match (kind, ints) with
            | "crash", [ Some leg; Some depth ] ->
                Ok { at; event = Crash_proc { leg; depth } }
            | "slow-proc", [ Some leg; Some depth; Some factor ] ->
                Ok { at; event = Slow_proc { address = { leg; depth }; factor } }
            | "slow-link", [ Some leg; Some depth; Some factor ] ->
                Ok { at; event = Slow_link { address = { leg; depth }; factor } }
            | "drop", [ Some leg; Some depth; Some penalty ] ->
                Ok { at; event = Drop_transfer { address = { leg; depth }; penalty } }
            | ("crash" | "slow-proc" | "slow-link" | "drop"), _ ->
                err (Printf.sprintf "malformed %s event" kind)
            | other, _ -> err (Printf.sprintf "unknown event kind %S" other)))
    | _ -> err "expected '<time> <kind> <leg> <depth> [<value>]'"
  in
  let rec collect acc = function
    | [] -> Ok (normalize (List.rev acc))
    | entry :: rest -> (
        match parse_line entry with
        | Ok t -> collect (t :: acc) rest
        | Error _ as e -> e)
  in
  collect [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

(* ---------- validation against a platform ---------- *)

let address_of = function
  | Slow_proc { address; _ } | Slow_link { address; _ } | Drop_transfer { address; _ }
  | Crash_proc address ->
      address

let validate spider trace =
  List.concat_map
    (fun { at; event } ->
      let { Spider.leg; depth } = address_of event in
      let where = event_to_string event in
      let bad_address =
        leg < 1
        || leg > Spider.legs spider
        || depth < 1
        || depth > Chain.length (Spider.leg_chain spider (min (max leg 1) (Spider.legs spider)))
      in
      List.concat
        [
          (if at < 0 then [ Printf.sprintf "%s: negative time %d" where at ] else []);
          (if bad_address then [ Printf.sprintf "%s: no such processor" where ] else []);
          (match event with
          | Slow_proc { factor; _ } | Slow_link { factor; _ } when factor < 1 ->
              [ Printf.sprintf "%s: factor must be >= 1" where ]
          | Drop_transfer { penalty; _ } when penalty < 0 ->
              [ Printf.sprintf "%s: negative penalty" where ]
          | _ -> []);
        ])
    trace

(* ---------- dynamic platform state ---------- *)

type state = {
  spider : Spider.t;
  proc_factor : int array array; (* accumulated slowdown, leg-major *)
  link_factor : int array array;
  alive : int array; (* surviving prefix length per leg *)
}

let init spider =
  let bank f =
    Array.init (Spider.legs spider) (fun lidx ->
        Array.init (Chain.length (Spider.leg_chain spider (lidx + 1))) f)
  in
  {
    spider;
    proc_factor = bank (fun _ -> 1);
    link_factor = bank (fun _ -> 1);
    alive = Array.init (Spider.legs spider) (fun lidx ->
        Chain.length (Spider.leg_chain spider (lidx + 1)));
  }

let copy state =
  {
    spider = state.spider;
    proc_factor = Array.map Array.copy state.proc_factor;
    link_factor = Array.map Array.copy state.link_factor;
    alive = Array.copy state.alive;
  }

let proc_factor state { Spider.leg; depth } = state.proc_factor.(leg - 1).(depth - 1)

let link_factor state { Spider.leg; depth } = state.link_factor.(leg - 1).(depth - 1)

let alive_depth state ~leg = state.alive.(leg - 1)

let is_alive state { Spider.leg; depth } = depth <= state.alive.(leg - 1)

let apply state event =
  match event with
  | Slow_proc { address = { leg; depth }; factor } ->
      state.proc_factor.(leg - 1).(depth - 1) <-
        state.proc_factor.(leg - 1).(depth - 1) * factor
  | Slow_link { address = { leg; depth }; factor } ->
      state.link_factor.(leg - 1).(depth - 1) <-
        state.link_factor.(leg - 1).(depth - 1) * factor
  | Crash_proc { leg; depth } ->
      state.alive.(leg - 1) <- min state.alive.(leg - 1) (depth - 1)
  | Drop_transfer _ -> ()

let residual state =
  match Spider.restrict state.spider ~depths:state.alive with
  | None -> None
  | Some (survivor, leg_map) ->
      (* fold the accumulated slowdowns into the surviving prefix *)
      let scaled = ref survivor in
      Array.iteri
        (fun ridx original_leg ->
          for depth = 1 to state.alive.(original_leg - 1) do
            let lf = state.link_factor.(original_leg - 1).(depth - 1) in
            let wf = state.proc_factor.(original_leg - 1).(depth - 1) in
            if lf > 1 || wf > 1 then
              scaled :=
                Spider.scale ~latency_factor:lf ~work_factor:wf !scaled
                  { Spider.leg = ridx + 1; depth }
          done)
        leg_map;
      Some (!scaled, leg_map)

(* ---------- replanning interface ---------- *)

type snapshot = {
  time : int;
  state : state;
  completed : int list;
  in_flight : (int * Spider.address) list;
  at_master : (int * Spider.address) list;
  remaining : trace;
}

type decision = Keep | Redirect of (int * Spider.address) list

(* ---------- seeded generation ---------- *)

let random rng spider ~events ~horizon =
  if events < 0 then invalid_arg "Fault.random: negative event count";
  if horizon < 0 then invalid_arg "Fault.random: negative horizon";
  let alive =
    Array.init (Spider.legs spider) (fun lidx ->
        Chain.length (Spider.leg_chain spider (lidx + 1)))
  in
  let alive_total () = Array.fold_left ( + ) 0 alive in
  let alive_addresses () =
    List.concat_map
      (fun lidx ->
        List.init alive.(lidx) (fun d -> { Spider.leg = lidx + 1; depth = d + 1 }))
      (List.init (Array.length alive) Fun.id)
  in
  let pick_address () =
    let addresses = Array.of_list (alive_addresses ()) in
    Msts_util.Prng.choice rng addresses
  in
  let make_event () =
    let roll = Msts_util.Prng.int rng 100 in
    let factor () = Msts_util.Prng.int_in rng 2 4 in
    if roll < 30 then Slow_proc { address = pick_address (); factor = factor () }
    else if roll < 55 then Slow_link { address = pick_address (); factor = factor () }
    else if roll < 80 then
      Drop_transfer
        {
          address = pick_address ();
          penalty = Msts_util.Prng.int_in rng 1 (max 1 (horizon / 4));
        }
    else
      (* crash, but never the last survivor: keep the residual problem
         feasible by construction *)
      let candidates =
        List.filter
          (fun { Spider.leg; depth } ->
            alive_total () - (alive.(leg - 1) - depth + 1) >= 1)
          (alive_addresses ())
      in
      match candidates with
      | [] -> Slow_proc { address = pick_address (); factor = factor () }
      | _ ->
          let a = Msts_util.Prng.choice rng (Array.of_list candidates) in
          alive.(a.Spider.leg - 1) <- a.Spider.depth - 1;
          Crash_proc a
  in
  normalize
    (List.init events (fun _ ->
         { at = Msts_util.Prng.int rng (horizon + 1); event = make_event () }))
