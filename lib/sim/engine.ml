type event = { time : int; seq : int; action : unit -> unit }

type t = {
  queue : event Msts_util.Heap.t;
  mutable clock : int;
  mutable next_seq : int;
  mutable processed : int;
}

let compare_events a b =
  let by_time = Int.compare a.time b.time in
  if by_time <> 0 then by_time else Int.compare a.seq b.seq

let create () =
  {
    queue = Msts_util.Heap.create ~cmp:compare_events;
    clock = 0;
    next_seq = 0;
    processed = 0;
  }

let now t = t.clock

let schedule_at t time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now (%d)" time t.clock);
  Msts_util.Heap.push t.queue { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule_after t delay action =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule_at t (t.clock + delay) action

let step t =
  match Msts_util.Heap.pop t.queue with
  | None -> false
  | Some ev ->
      Msts_obs.Obs.record "engine.event_gap_us" (ev.time - t.clock);
      t.clock <- ev.time;
      t.processed <- t.processed + 1;
      Msts_obs.Obs.count "engine.events";
      ev.action ();
      true

let run ?max_events t =
  match max_events with
  | None -> while step t do () done
  | Some budget ->
      if budget < 1 then invalid_arg "Msts.Engine.run: max_events must be >= 1";
      let remaining = ref budget in
      let running = ref true in
      while !running do
        if !remaining = 0 && not (Msts_util.Heap.is_empty t.queue) then
          failwith
            (Printf.sprintf
               "Msts.Engine.run: event budget (%d) exhausted at simulated time \
                %d with %d events still queued — is a callback scheduling \
                events forever?"
               budget t.clock
               (Msts_util.Heap.length t.queue));
        if step t then decr remaining else running := false
      done

let events_processed t = t.processed
