type t = {
  engine : Engine.t;
  name : string;
  mutable free_at : int;
  mutable log : int Msts_schedule.Intervals.interval list; (* newest first *)
  mutable served : int;
}

let create engine ~name = { engine; name; free_at = 0; log = []; served = 0 }

let name t = t.name

let request t ~duration ~tag ~on_start =
  if duration < 0 then invalid_arg "Resource.request: negative duration";
  let start = max t.free_at (Engine.now t.engine) in
  if start > Engine.now t.engine then Msts_obs.Obs.count "netsim.resource_waits";
  t.free_at <- start + duration;
  t.log <- { Msts_schedule.Intervals.start; duration; tag } :: t.log;
  t.served <- t.served + 1;
  Engine.schedule_at t.engine start (fun () -> on_start start)

let busy_log t = List.rev t.log

let served t = t.served

let idle_until t = t.free_at
