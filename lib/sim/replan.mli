(** Online replanning against a fault trace.

    {!replay} drives {!Netsim.replay_under_faults} with a non-trivial
    decision hook: at every fault event it re-runs the optimal spider
    algorithm on the {e residual} platform ({!Fault.residual} — surviving
    leg prefixes with accumulated slowdowns folded in) for the tasks still
    at the master, then decides between keeping course and adopting the
    redirect by simulating both continuations to the end of the known
    trace and comparing realised makespans.

    Keeping course is always one of the compared continuations, so the
    realised makespan is never worse than the blind static replay's on the
    same trace — the test suite checks this inequality on random traces.
    The lookahead is clairvoyant about the scripted future (this is an
    upper bound on what an online policy can know), but each continuation
    is an honest execution: transfers still retry, crashed-leg tasks still
    return to the master. *)

type outcome = {
  report : Netsim.fault_report;  (** the realised execution *)
  replans : int;  (** fault events where the redirect was adopted *)
  considered : int;  (** fault events where a redirect existed at all *)
  final_intent : Msts_schedule.Spider_schedule.t option;
      (** at the last adopted replan: the original plan's entries for
          already-emitted tasks spliced with the residual plan re-anchored
          at the fault's instant ({!Msts_schedule.Spider_schedule.shift} /
          [filter_tasks] / [concat]); [None] when no replan was adopted *)
}

val replay : ?trace:Fault.trace -> Msts_schedule.Spider_schedule.t -> outcome
(** @raise Invalid_argument as {!Netsim.replay_under_faults} (bad trace,
    or a trace that kills every processor while tasks remain). *)
