(** Event-driven execution of master-slave platforms.

    An independent execution substrate for the scheduling model: the master,
    every link and every processor become FIFO unit resources on the event
    engine, tasks are store-and-forward messages, and the one-port rule is
    enforced by construction.  Three entry points:

    - {!run_sequence_spider} / {!run_sequence_chain}: eager execution of a
      destination sequence.  Must coincide exactly with the analytic ASAP
      timing of {!Msts_baseline.Asap} — the test suite uses this as a
      cross-validation of both.
    - {!execute}: release each task at the {e planned} emission time of
      a schedule and let the rest flow eagerly.  For a feasible plan the
      realised completion of every task is never later than planned — this
      validates schedules by actually executing them.
    - {!pull_policy}: an online, demand-driven master (the SETI@home-style
      baseline): idle processors request work, the master serves requests
      first-come-first-served.  No global knowledge, no optimality.

    Every executor is instrumented for {!Msts_trace.Trace}: run it inside
    {!Msts_trace.Trace.with_recorder} and each grant, completion, abort and
    task return becomes a typed trace event, ready for the segment-algebra
    invariant checker.  Without a recorder the hooks are no-ops. *)

val run_sequence_spider :
  Msts_platform.Spider.t -> Msts_platform.Spider.address array ->
  Msts_schedule.Spider_schedule.t

val run_sequence_chain :
  Msts_platform.Chain.t -> int array -> Msts_schedule.Schedule.t

type execution_report = {
  realized : Msts_schedule.Spider_schedule.t;
  planned_makespan : int;
  realized_makespan : int;
  per_task_slack : int array;
      (** planned completion − realised completion, per task (≥ 0 for a
          feasible plan) *)
}

val execute : Msts_schedule.Plan.t -> execution_report
(** Unified executor over the polymorphic plan type: chain plans are
    promoted to one-leg spiders, spider plans run as-is.  The plan must be
    feasible with non-negative dates (checked; @raise Invalid_argument
    otherwise). *)

val pull_policy :
  ?buffer:int -> Msts_platform.Spider.t -> tasks:int -> Msts_schedule.Spider_schedule.t
(** Demand-driven online baseline.  [buffer] (default 1) is each
    processor's credit: how many tasks it may have queued or in flight
    before requesting more.  Initial requests are issued in address order.
    @raise Invalid_argument if [buffer < 1] or [tasks < 0]. *)

val replay_routing :
  ?buffer:int -> ?on:Msts_platform.Spider.t -> Msts_schedule.Spider_schedule.t ->
  execution_report
(** Execute a plan's {e decisions} — routing and emission order — under
    conditions the planner did not assume; the plan's dates are recomputed
    eagerly.  Two knobs:

    - [buffer]: each processor holds at most that many tasks that are
      present but not yet executing (a relay frees its slot when its
      outgoing transfer completes, a destination when execution starts).
      Default: unbounded, like the paper's model.  Deadlock-free: slots
      only flow forward along a leg.
    - [on]: run on this platform instead of the plan's own — it must have
      the same shape (legs and depths), but latencies and work times may
      differ.  This is the failure-injection hook: slow a node down and
      see what the static plan costs compared to replanning.

    The realised makespan can exceed the planned one when buffers stall
    the pipeline or the platform degraded.
    @raise Invalid_argument if [buffer < 1] or [on] has a different
    shape. *)

val execute_plan_bounded :
  buffer:int -> Msts_schedule.Spider_schedule.t -> execution_report
(** [replay_routing ~buffer] on the plan's own platform. *)

val degrade :
  ?latency_factor:int -> Msts_platform.Spider.t ->
  address:Msts_platform.Spider.address -> work_factor:int ->
  Msts_platform.Spider.t
(** A copy of the spider in which one processor's work time is multiplied
    by [work_factor] and its incoming link's latency by [latency_factor]
    (default 1, i.e. the link is untouched) — the standard fault model for
    the robustness experiments.  @raise Invalid_argument if either factor
    is [< 1]. *)

(** {2 Mid-run faults}

    The executors above fix the platform before the run.  The two below
    accept a {!Fault.trace} of scripted mid-run events — slowdowns that
    stretch operations already in flight, transient transfer drops with
    retry after a backoff, and permanent crashes that cut off a leg's
    suffix (store-and-forward: nothing below a dead node is reachable).
    Tasks stranded at or in transit into dead nodes return to the master,
    which re-issues them from its own copy of the input data; completed
    results survive.  With an empty trace both reproduce their fault-free
    counterparts ({!replay_routing}, {!pull_policy} with [buffer = 1])
    exactly. *)

type fault_report = {
  observed : Msts_schedule.Spider_schedule.t;
      (** realised routing and {e grant} dates; durations are nominal, so
          under slowdowns this is the decision log, not the timing truth *)
  observed_makespan : int;  (** realised completion of the last task *)
  completions : int array;  (** realised completion time, per task *)
  aborted_ops : int;  (** operations cut short by drops and crashes *)
  returned_tasks : int;  (** tasks the master had to re-issue *)
  transfer_retries : int;  (** transfers re-attempted after a drop *)
}

val replay_under_faults :
  ?max_events:int ->
  ?trace:Fault.trace ->
  ?decide:(Fault.snapshot -> Fault.decision) ->
  Msts_schedule.Spider_schedule.t -> fault_report
(** Execute a plan's decisions while the trace unfolds.  After processing
    each fault event the [decide] hook (default: always {!Fault.Keep}) sees
    a {!Fault.snapshot} and may redirect the tasks still at the master —
    {!Replan.replay} plugs the online replanner in here.  Without a
    redirect the master is blind: when a destination dies, the task is
    retargeted to the deepest survivor of the same leg, or to the first
    surviving leg when the whole leg is gone.  [max_events] bounds the
    engine ({!Engine.run}): the fuzz harness uses it to turn a livelock
    into a failure.
    @raise Invalid_argument if the trace does not validate against the
    plan's platform, if a redirect names a dead processor or the wrong task
    set, or if every processor crashes while tasks remain. *)

val pull_under_faults :
  ?max_events:int ->
  ?trace:Fault.trace -> Msts_platform.Spider.t -> tasks:int -> fault_report
(** The demand-driven baseline under the same fault model: requests from
    dead processors are discarded, returned tasks are re-served to the next
    requester, a dropped emission re-enters the queue after its backoff.
    @raise Invalid_argument as for {!replay_under_faults}. *)
