(** Event-driven execution of master-slave platforms.

    An independent execution substrate for the scheduling model: the master,
    every link and every processor become FIFO unit resources on the event
    engine, tasks are store-and-forward messages, and the one-port rule is
    enforced by construction.  Three entry points:

    - {!run_sequence_spider} / {!run_sequence_chain}: eager execution of a
      destination sequence.  Must coincide exactly with the analytic ASAP
      timing of {!Msts_baseline.Asap} — the test suite uses this as a
      cross-validation of both.
    - {!execute_plan}: release each task at the {e planned} emission time of
      a schedule and let the rest flow eagerly.  For a feasible plan the
      realised completion of every task is never later than planned — this
      validates schedules by actually executing them.
    - {!pull_policy}: an online, demand-driven master (the SETI@home-style
      baseline): idle processors request work, the master serves requests
      first-come-first-served.  No global knowledge, no optimality. *)

val run_sequence_spider :
  Msts_platform.Spider.t -> Msts_platform.Spider.address array ->
  Msts_schedule.Spider_schedule.t

val run_sequence_chain :
  Msts_platform.Chain.t -> int array -> Msts_schedule.Schedule.t

type execution_report = {
  realized : Msts_schedule.Spider_schedule.t;
  planned_makespan : int;
  realized_makespan : int;
  per_task_slack : int array;
      (** planned completion − realised completion, per task (≥ 0 for a
          feasible plan) *)
}

val execute_plan : Msts_schedule.Spider_schedule.t -> execution_report
(** The plan must be feasible with non-negative dates (checked; @raise
    Invalid_argument otherwise). *)

val execute_chain_plan : Msts_schedule.Schedule.t -> execution_report

val pull_policy :
  ?buffer:int -> Msts_platform.Spider.t -> tasks:int -> Msts_schedule.Spider_schedule.t
(** Demand-driven online baseline.  [buffer] (default 1) is each
    processor's credit: how many tasks it may have queued or in flight
    before requesting more.  Initial requests are issued in address order.
    @raise Invalid_argument if [buffer < 1] or [tasks < 0]. *)

val replay_routing :
  ?buffer:int -> ?on:Msts_platform.Spider.t -> Msts_schedule.Spider_schedule.t ->
  execution_report
(** Execute a plan's {e decisions} — routing and emission order — under
    conditions the planner did not assume; the plan's dates are recomputed
    eagerly.  Two knobs:

    - [buffer]: each processor holds at most that many tasks that are
      present but not yet executing (a relay frees its slot when its
      outgoing transfer completes, a destination when execution starts).
      Default: unbounded, like the paper's model.  Deadlock-free: slots
      only flow forward along a leg.
    - [on]: run on this platform instead of the plan's own — it must have
      the same shape (legs and depths), but latencies and work times may
      differ.  This is the failure-injection hook: slow a node down and
      see what the static plan costs compared to replanning.

    The realised makespan can exceed the planned one when buffers stall
    the pipeline or the platform degraded.
    @raise Invalid_argument if [buffer < 1] or [on] has a different
    shape. *)

val execute_plan_bounded :
  buffer:int -> Msts_schedule.Spider_schedule.t -> execution_report
(** [replay_routing ~buffer] on the plan's own platform. *)

val degrade :
  Msts_platform.Spider.t -> address:Msts_platform.Spider.address ->
  work_factor:int -> Msts_platform.Spider.t
(** A copy of the spider in which one processor's work time is multiplied
    by [work_factor] — the standard fault model for the robustness
    experiments.  @raise Invalid_argument if [work_factor < 1]. *)
