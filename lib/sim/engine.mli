(** Minimal deterministic discrete-event engine.

    Integer simulated time, events executed in (time, insertion) order so
    that runs are reproducible.  Callbacks may schedule further events at
    the current time or later; scheduling in the past is a programming
    error and raises. *)

type t

val create : unit -> t

val now : t -> int
(** Current simulated time (0 before the first event). *)

val schedule_at : t -> int -> (unit -> unit) -> unit
(** Run a callback at an absolute time. @raise Invalid_argument if the time
    is before {!now}. *)

val schedule_after : t -> int -> (unit -> unit) -> unit
(** Relative variant. @raise Invalid_argument on a negative delay. *)

val run : ?max_events:int -> t -> unit
(** Execute events until the queue is empty.  [max_events] (default: no
    bound) is a progress guard for adversarial workloads — fuzzing, fault
    interleavings — where a buggy callback could schedule events forever:
    once the budget is spent with events still queued, the run fails with
    a diagnostic naming the simulated time and queue depth instead of
    hanging.  @raise Invalid_argument if [max_events < 1]; @raise Failure
    when the budget is exhausted. *)

val step : t -> bool
(** Execute the single next event; [false] when the queue was empty. *)

val events_processed : t -> int
(** Total callbacks executed (cheap sanity metric for tests). *)
