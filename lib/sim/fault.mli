(** Scripted mid-run faults for the execution substrate.

    A fault {e trace} is a list of timed events injected into a running
    simulation ({!Netsim.replay_under_faults}, {!Netsim.pull_under_faults}):

    - [Slow_proc]: from that instant the processor's work rate drops — future
      executions take [factor ×] longer and the remaining part of an
      execution in flight is stretched by [factor] (slowdowns compound);
    - [Slow_link]: same for a link's latency (depth 1 is the leg's master
      link, so it stretches the master-port occupancy for that leg);
    - [Drop_transfer]: a transient link fault — the transfer in flight into
      that processor (if any) is aborted and the task re-requests the link
      from the node that still holds it after a backoff of [penalty] time
      units (bounded retries: each event aborts at most one transfer);
    - [Crash_proc]: the processor dies permanently, and — store-and-forward —
      everything deeper on its leg becomes unreachable with it.  Results
      already computed survive; tasks located at (or in transit into) dead
      nodes return to the master, which re-issues them from its own copy of
      the input data.

    Faults take effect at the {e start} of their instant: an operation that
    would complete exactly at time [t] is still hit by a fault at [t]. *)

type event =
  | Slow_proc of { address : Msts_platform.Spider.address; factor : int }
  | Slow_link of { address : Msts_platform.Spider.address; factor : int }
  | Drop_transfer of { address : Msts_platform.Spider.address; penalty : int }
  | Crash_proc of Msts_platform.Spider.address

type timed = { at : int; event : event }

type trace = timed list

val normalize : trace -> trace
(** Stable sort by time — the order executors process events in. *)

val validate : Msts_platform.Spider.t -> trace -> string list
(** Human-readable problems (bad addresses, factors [< 1], negative times or
    penalties).  Empty list = usable against that spider. *)

val event_to_string : event -> string

val timed_to_string : timed -> string

val to_string : trace -> string
(** One event per line, the same format {!parse} reads. *)

val pp : Format.formatter -> trace -> unit

val parse : string -> (trace, string) result
(** Line format: [<time> <kind> <leg> <depth> [<value>]] where [kind] is
    [slow-proc], [slow-link], [drop] or [crash] and [value] is the factor
    (slow), the penalty (drop) or absent (crash).  Blank lines and [#]
    comments are ignored; the result is normalized. *)

val load : string -> (trace, string) result

val random :
  Msts_util.Prng.t -> Msts_platform.Spider.t -> events:int -> horizon:int -> trace
(** Seeded random trace: a mix of slowdowns (factors 2–4), transient drops
    and crashes at uniform times in [0..horizon].  Crashes never kill the
    last surviving processor, so the residual problem stays feasible by
    construction.  @raise Invalid_argument on negative arguments. *)

(** {2 Dynamic platform state}

    What an executor knows mid-run: accumulated slowdown factors and the
    surviving prefix of each leg. *)

type state

val init : Msts_platform.Spider.t -> state

val copy : state -> state

val apply : state -> event -> unit
(** Fold one event into the bookkeeping ([Drop_transfer] is transient and
    leaves the state unchanged). *)

val proc_factor : state -> Msts_platform.Spider.address -> int

val link_factor : state -> Msts_platform.Spider.address -> int

val alive_depth : state -> leg:int -> int
(** Surviving prefix length of a leg (0 = the whole leg is gone). *)

val is_alive : state -> Msts_platform.Spider.address -> bool

val residual : state -> (Msts_platform.Spider.t * int array) option
(** The surviving platform with slowdowns folded into its latencies and
    work times, plus the residual-leg → original-leg map
    ({!Msts_platform.Spider.restrict}).  [None] when no processor
    survives. *)

(** {2 Replanning interface}

    {!Netsim.replay_under_faults} calls a decision hook after every fault
    event; {!Replan} implements the interesting policy. *)

type snapshot = {
  time : int;  (** the fault's instant *)
  state : state;  (** private copy of the dynamic platform state *)
  completed : int list;  (** tasks already executed (results survive) *)
  in_flight : (int * Msts_platform.Spider.address) list;
      (** emitted but unfinished tasks with their current (possibly already
          rerouted) destinations *)
  at_master : (int * Msts_platform.Spider.address) list;
      (** still unemitted tasks in current emission order *)
  remaining : trace;  (** events still to come, normalized order *)
}

type decision =
  | Keep  (** continue blindly (crash rerouting still applies) *)
  | Redirect of (int * Msts_platform.Spider.address) list
      (** replace the master's emission queue: same task set as
          [at_master], new order and destinations *)
