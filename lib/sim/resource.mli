(** Unit-capacity FIFO resource on top of the event engine.

    Models the paper's exclusivity rules: a link carries one transfer at a
    time, a processor runs one task at a time, the master's port drives one
    emission at a time.  Requests are served in arrival order (ties in
    request order), each holding the resource for its stated duration.  The
    busy log is kept for Gantt extraction and occupancy assertions. *)

type t

val create : Engine.t -> name:string -> t

val name : t -> string

val request : t -> duration:int -> tag:int -> on_start:(int -> unit) -> unit
(** Queue a request; [on_start start_time] fires when the resource is
    granted, which holds it for [duration].  @raise Invalid_argument on a
    negative duration. *)

val busy_log : t -> int Msts_schedule.Intervals.interval list
(** Granted intervals (tagged by request tag), grant order. *)

val served : t -> int
(** Number of grants so far. *)

val idle_until : t -> int
(** Time at which the currently queued work completes. *)
