(** Textual platform format.

    A small line-oriented format so platforms can be stored in files, passed
    to the CLI and diffed in experiments.  Grammar (blank lines and [#]
    comments ignored):

    {v
    chain            spider             fork       tree
    <c> <w>          leg                <c> <w>    <c> <w> <parent>
    <c> <w>          <c> <w>            <c> <w>    <c> <w> <parent>
    ...              <c> <w>                       ...
                     leg
                     <c> <w>
    v}

    Processors are listed from the master outwards.  In the [tree] form
    nodes are numbered 1.. in listing order and [<parent>] refers to an
    earlier node (0 = the master). *)

type platform =
  | Chain_platform of Chain.t
  | Fork_platform of Fork.t
  | Spider_platform of Spider.t
  | Tree_platform of Tree.t

val platform_to_string : platform -> string
(** Serialise in the format above (inverse of {!of_string}). *)

val of_string : string -> (platform, string) result
(** Parse; the error mentions the offending line number. *)

val chain_of_string : string -> (Chain.t, string) result
(** Like {!of_string} but insists on a chain. *)

val spider_of_string : string -> (Spider.t, string) result
(** Accepts a spider, or a chain/fork promoted to a one-leg/shallow
    spider; a tree is accepted only when only its root branches. *)

val load : string -> (platform, string) result
(** Read a platform from a file path. *)

val save : string -> platform -> unit
(** Write a platform to a file path. *)
