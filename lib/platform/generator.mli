(** Random platform generators.

    The paper evaluates on abstract heterogeneous platforms; these
    generators provide the synthetic instances for the optimality tests,
    the heuristic-gap experiments and the scaling benchmarks.  Everything is
    driven by {!Msts_util.Prng} so each instance is reproducible from its
    seed. *)

type profile = {
  latency_min : int;
  latency_max : int;
  work_min : int;
  work_max : int;
}
(** Inclusive uniform ranges for link latencies and work times. *)

val default_profile : profile
(** Latencies in [1..10], work in [1..20] — moderately communication-bound,
    the regime where placement decisions matter. *)

val balanced_profile : profile
(** Latencies and work both in [1..10]. *)

val compute_bound_profile : profile
(** Cheap links (1..3), expensive work (10..50): deep processors are worth
    feeding. *)

val comm_bound_profile : profile
(** Expensive links (5..20), cheap work (1..5): most tasks should stay close
    to the master. *)

val chain : Msts_util.Prng.t -> profile -> p:int -> Chain.t
(** Random chain of [p] processors. @raise Invalid_argument if [p <= 0]. *)

val fork : Msts_util.Prng.t -> profile -> slaves:int -> Fork.t
(** Random fork. @raise Invalid_argument if [slaves <= 0]. *)

val spider :
  Msts_util.Prng.t -> profile -> legs:int -> max_depth:int -> Spider.t
(** Random spider with [legs] legs, each of uniform depth in
    [1..max_depth]. *)

val tree :
  Msts_util.Prng.t -> profile -> nodes:int -> max_children:int -> Tree.t
(** Random tree over exactly [nodes] processors, attaching each new node to
    a uniformly chosen node (or the master) that still has fewer than
    [max_children] children. *)

val spread_profile :
  mean_latency:int -> mean_work:int -> spread:float -> profile
(** Controlled-heterogeneity profile: values uniform in
    [\[max 1 ⌊mean/(1+spread)⌋, ⌈mean·(1+spread)⌉\]].  [spread = 0.0] is a
    homogeneous platform; larger spreads widen the range around the same
    mean scale.  Used by the heterogeneity-sweep experiment.
    @raise Invalid_argument on non-positive means or negative spread. *)

val heterogeneity : Chain.t -> float
(** Mean of the coefficients of variation (σ/μ) of the chain's latencies
    and of its work times (computed separately, so a homogeneous platform
    scores 0 even when the two means differ) — the knob the sweep
    experiment reports against. *)
