(** Spider platforms (paper §6, Figure 5).

    A spider is a tree in which only the master (the root) may have several
    children: it is a bundle of chains ("legs") sharing the master.  A
    processor is addressed by its leg index and its depth within that leg.
    The master sends at most one task at a time over all legs combined
    (one-port), while within each leg the chain rules apply. *)

type t

type address = { leg : int; depth : int }
(** [leg] in [1..legs t], [depth] in [1..Chain.length (leg_chain t leg)]. *)

val make : Chain.t array -> t
(** @raise Invalid_argument on an empty array. *)

val of_legs : Chain.t list -> t

val legs : t -> int
(** Number of legs (the master's arity). *)

val leg_chain : t -> int -> Chain.t
(** [leg_chain t l], [1 <= l <= legs t]. *)

val processor_count : t -> int
(** Total number of processors across all legs. *)

val addresses : t -> address list
(** Every processor address, legs in order, shallow first. *)

val latency : t -> address -> int

val work : t -> address -> int

val scale : ?latency_factor:int -> ?work_factor:int -> t -> address -> t
(** A copy in which one processor's link latency and/or work time are
    multiplied by the given factors (both default 1).
    @raise Invalid_argument on a bad address or a factor [< 1]. *)

val restrict : t -> depths:int array -> (t * int array) option
(** Residual-platform surgery: [restrict t ~depths] keeps the first
    [depths.(l-1)] processors of each leg [l] (0 drops the leg entirely —
    under store-and-forward, a crash at depth [d] makes everything at depth
    [>= d] unreachable).  Returns [None] when no processor survives;
    otherwise the surviving spider plus the map from its leg indices
    (position [i] holds the original leg of residual leg [i+1]).
    @raise Invalid_argument if [depths] has the wrong length or an entry is
    outside [0..leg length]. *)

val of_chain : Chain.t -> t
(** A chain is the spider with a single leg. *)

val of_fork : Fork.t -> t
(** A fork is the spider whose legs all have depth 1. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val max_depth : t -> int
(** Length of the longest leg. *)
