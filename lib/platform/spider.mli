(** Spider platforms (paper §6, Figure 5).

    A spider is a tree in which only the master (the root) may have several
    children: it is a bundle of chains ("legs") sharing the master.  A
    processor is addressed by its leg index and its depth within that leg.
    The master sends at most one task at a time over all legs combined
    (one-port), while within each leg the chain rules apply. *)

type t

type address = { leg : int; depth : int }
(** [leg] in [1..legs t], [depth] in [1..Chain.length (leg_chain t leg)]. *)

val make : Chain.t array -> t
(** @raise Invalid_argument on an empty array. *)

val of_legs : Chain.t list -> t

val legs : t -> int
(** Number of legs (the master's arity). *)

val leg_chain : t -> int -> Chain.t
(** [leg_chain t l], [1 <= l <= legs t]. *)

val processor_count : t -> int
(** Total number of processors across all legs. *)

val addresses : t -> address list
(** Every processor address, legs in order, shallow first. *)

val latency : t -> address -> int

val work : t -> address -> int

val of_chain : Chain.t -> t
(** A chain is the spider with a single leg. *)

val of_fork : Fork.t -> t
(** A fork is the spider whose legs all have depth 1. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val max_depth : t -> int
(** Length of the longest leg. *)
