type platform =
  | Chain_platform of Chain.t
  | Fork_platform of Fork.t
  | Spider_platform of Spider.t
  | Tree_platform of Tree.t

let pairs_block pairs =
  String.concat "" (List.map (fun (c, w) -> Printf.sprintf "%d %d\n" c w) pairs)

(* Preorder listing with a parent column (0 = master). *)
let tree_block tree =
  let buf = Buffer.create 128 in
  let counter = ref 0 in
  let rec emit parent (n : Tree.node) =
    incr counter;
    let id = !counter in
    Printf.bprintf buf "%d %d %d\n" n.Tree.latency n.Tree.work parent;
    List.iter (emit id) n.Tree.children
  in
  List.iter (emit 0) (Tree.roots tree);
  Buffer.contents buf

let platform_to_string = function
  | Chain_platform chain -> "chain\n" ^ pairs_block (Chain.to_pairs chain)
  | Fork_platform fork -> "fork\n" ^ pairs_block (Fork.to_pairs fork)
  | Spider_platform spider ->
      let leg l =
        "leg\n" ^ pairs_block (Chain.to_pairs (Spider.leg_chain spider l))
      in
      "spider\n"
      ^ String.concat "" (List.map leg (Msts_util.Intx.range 1 (Spider.legs spider)))
  | Tree_platform tree -> "tree\n" ^ tree_block tree

(* Lines paired with their 1-based position, comments and blanks removed. *)
let meaningful_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter (fun (_, line) ->
         line <> "" && not (String.length line > 0 && line.[0] = '#'))

let parse_pair (lineno, line) =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ a; b ] -> (
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some c, Some w when c > 0 && w > 0 -> Ok (c, w)
      | Some _, Some _ -> Error (Printf.sprintf "line %d: values must be positive" lineno)
      | _ -> Error (Printf.sprintf "line %d: expected two integers" lineno))
  | _ -> Error (Printf.sprintf "line %d: expected '<c> <w>'" lineno)

let rec parse_pairs acc = function
  | [] -> Ok (List.rev acc, [])
  | ((_, line) :: _) as rest when line = "leg" -> Ok (List.rev acc, rest)
  | entry :: rest -> (
      match parse_pair entry with
      | Ok pair -> parse_pairs (pair :: acc) rest
      | Error e -> Error e)

let guard_nonempty lineno what = function
  | [] -> Error (Printf.sprintf "line %d: empty %s" lineno what)
  | pairs -> Ok pairs

let parse_chain lineno lines =
  match parse_pairs [] lines with
  | Error e -> Error e
  | Ok (_, (extra_lineno, _) :: _) ->
      Error (Printf.sprintf "line %d: unexpected 'leg' in a chain" extra_lineno)
  | Ok (pairs, []) ->
      Result.map (fun pairs -> Chain_platform (Chain.of_pairs pairs))
        (guard_nonempty lineno "chain" pairs)

let parse_fork lineno lines =
  match parse_pairs [] lines with
  | Error e -> Error e
  | Ok (_, (extra_lineno, _) :: _) ->
      Error (Printf.sprintf "line %d: unexpected 'leg' in a fork" extra_lineno)
  | Ok (pairs, []) ->
      Result.map (fun pairs -> Fork_platform (Fork.of_pairs pairs))
        (guard_nonempty lineno "fork" pairs)

let parse_spider lineno lines =
  let rec legs acc = function
    | [] ->
        if acc = [] then Error (Printf.sprintf "line %d: spider without legs" lineno)
        else Ok (Spider_platform (Spider.of_legs (List.rev acc)))
    | (leg_lineno, "leg") :: rest -> (
        match parse_pairs [] rest with
        | Error e -> Error e
        | Ok (pairs, remaining) -> (
            match guard_nonempty leg_lineno "leg" pairs with
            | Error e -> Error e
            | Ok pairs -> legs (Chain.of_pairs pairs :: acc) remaining))
    | (other_lineno, _) :: _ ->
        Error (Printf.sprintf "line %d: expected 'leg'" other_lineno)
  in
  legs [] lines

let parse_tree_line (lineno, line) =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ a; b; c ] -> (
      match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
      | Some latency, Some work, Some parent when latency > 0 && work > 0 && parent >= 0
        ->
          Ok (latency, work, parent)
      | Some _, Some _, Some _ ->
          Error (Printf.sprintf "line %d: invalid tree node values" lineno)
      | _ -> Error (Printf.sprintf "line %d: expected three integers" lineno))
  | _ -> Error (Printf.sprintf "line %d: expected '<c> <w> <parent>'" lineno)

let parse_tree lineno lines =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | entry :: rest -> (
        match parse_tree_line entry with
        | Ok node -> collect (node :: acc) rest
        | Error e -> Error e)
  in
  match collect [] lines with
  | Error e -> Error e
  | Ok [] -> Error (Printf.sprintf "line %d: empty tree" lineno)
  | Ok listed ->
      let nodes = Array.of_list listed in
      let count = Array.length nodes in
      let invalid_parent =
        List.find_opt
          (fun idx ->
            let _, _, parent = nodes.(idx) in
            parent > idx (* parent must be an earlier node or the master *))
          (List.init count Fun.id)
      in
      (match invalid_parent with
      | Some idx ->
          Error
            (Printf.sprintf "node %d: parent must be an earlier node or 0" (idx + 1))
      | None ->
          let rec build id =
            let latency, work, _ = nodes.(id - 1) in
            let children =
              List.filter_map
                (fun idx ->
                  let _, _, parent = nodes.(idx) in
                  if parent = id then Some (build (idx + 1)) else None)
                (List.init count Fun.id)
            in
            Tree.node ~children ~latency ~work ()
          in
          let top =
            List.filter_map
              (fun idx ->
                let _, _, parent = nodes.(idx) in
                if parent = 0 then Some (build (idx + 1)) else None)
              (List.init count Fun.id)
          in
          Ok (Tree_platform (Tree.make top)))

let of_string text =
  match meaningful_lines text with
  | [] -> Error "empty platform description"
  | (lineno, kind) :: rest -> (
      match kind with
      | "chain" -> parse_chain lineno rest
      | "fork" -> parse_fork lineno rest
      | "spider" -> parse_spider lineno rest
      | "tree" -> parse_tree lineno rest
      | other -> Error (Printf.sprintf "line %d: unknown platform kind %S" lineno other))

let chain_of_string text =
  match of_string text with
  | Ok (Chain_platform chain) -> Ok chain
  | Ok (Fork_platform _ | Spider_platform _ | Tree_platform _) ->
      Error "expected a chain platform"
  | Error e -> Error e

let spider_of_string text =
  match of_string text with
  | Ok (Spider_platform spider) -> Ok spider
  | Ok (Chain_platform chain) -> Ok (Spider.of_chain chain)
  | Ok (Fork_platform fork) -> Ok (Spider.of_fork fork)
  | Ok (Tree_platform tree) -> (
      match Tree.to_spider tree with
      | Some spider -> Ok spider
      | None -> Error "tree platform branches below the master")
  | Error e -> Error e

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let save path platform =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (platform_to_string platform))
