(** Chain platforms (paper §2, Figure 1).

    A chain of [p] heterogeneous processors hangs off the master: processor
    [k] (1-indexed, processor 1 closest to the master) is reached through a
    link of latency [c k] and executes one task in [w k] time units.  Every
    node follows the one-port model: one incoming and one outgoing transfer
    at a time, overlapping with computation.

    Latencies and work times are strictly positive integers; times are exact
    (the paper types task start dates in ℕ). *)

type t
(** Immutable chain description. *)

val make : c:int array -> w:int array -> t
(** [make ~c ~w] where [c.(k-1)] is the latency of the link into processor
    [k] and [w.(k-1)] its per-task work time.
    @raise Invalid_argument if the arrays differ in length, are empty, or
    contain non-positive values. *)

val of_pairs : (int * int) list -> t
(** [of_pairs [(c1,w1); ...]] lists processors from the master outwards. *)

val length : t -> int
(** Number of processors [p]. *)

val latency : t -> int -> int
(** [latency t k] is [c_k], [1 <= k <= p]. @raise Invalid_argument outside
    that range. *)

val work : t -> int -> int
(** [work t k] is [w_k], [1 <= k <= p]. @raise Invalid_argument outside
    that range. *)

val path_latency : t -> int -> int
(** [path_latency t k] = [c_1 + ... + c_k]: earliest a task can reach
    processor [k] counting from its first emission. *)

val drop_first : t -> t
(** The sub-chain [(c_i, w_i), i in 2..p] used throughout the optimality
    proof (Lemma 2).  @raise Invalid_argument on a single-processor chain. *)

val prefix : t -> int -> t
(** [prefix t k] keeps processors [1..k]. @raise Invalid_argument unless
    [1 <= k <= p]. *)

val to_pairs : t -> (int * int) list
(** Inverse of [of_pairs]. *)

val scale : ?latency_factor:int -> ?work_factor:int -> t -> at:int -> t
(** A copy in which processor [at]'s link latency and/or work time are
    multiplied by the given factors (both default 1).  The degradation
    primitive behind the fault model.  @raise Invalid_argument if [at] is
    out of range or a factor is [< 1]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders like ["chain[(c=2,w=3); (c=3,w=5)]"]. *)

val to_string : t -> string

val master_only_makespan : t -> int -> int
(** [master_only_makespan t n] is the horizon T∞ of §3: the makespan of the
    naive schedule placing all [n] tasks on processor 1,
    [c_1 + (n-1)·max(w_1,c_1) + w_1]. Returns 0 for [n = 0]. *)

val total_work_rate : t -> float
(** Aggregate processing rate [Σ 1/w_k] in tasks per time unit — a crude
    capacity measure used by generators and experiment summaries. *)
