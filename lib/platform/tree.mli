(** General tree platforms.

    Trees are the long-term objective stated in the paper's conclusion: the
    proposed attack is to cover a tree with simpler structures (chains and
    spiders).  This module provides the tree description plus the
    spider-extraction heuristics used by the tree-scheduling extension
    ({!Msts_spider} consumes the extracted spider). *)

type node = {
  latency : int;  (** latency of the link from the parent *)
  work : int;  (** per-task work time *)
  children : node list;
}

type t
(** A tree rooted at the master.  The master itself holds the tasks and does
    not compute; its children are the top-level nodes. *)

val make : node list -> t
(** @raise Invalid_argument if there are no nodes or any latency/work is
    non-positive. *)

val roots : t -> node list

val node : ?children:node list -> latency:int -> work:int -> unit -> node
(** Node constructor with validation. *)

val processor_count : t -> int

val depth : t -> int
(** Longest root-to-leaf path length (0 for the master alone is
    impossible — trees are non-empty). *)

val is_chain : t -> bool
(** True when every node has at most one child and the master has exactly
    one. *)

val is_spider : t -> bool
(** True when only the master branches (every non-root node has at most one
    child). *)

val to_spider : t -> Spider.t option
(** Exact conversion when {!is_spider} holds. *)

(** Which child continues a leg when a node branches during extraction. *)
type extraction_policy =
  | Fastest_processor  (** follow the child with the smallest work time *)
  | Cheapest_link  (** follow the child with the smallest link latency *)
  | Best_rate  (** follow the child maximising the subtree work rate *)

val extract_spider : extraction_policy -> t -> Spider.t
(** Cover heuristic: keep, under every branching node, only the child chosen
    by the policy, yielding a spider on a subset of the processors.  The
    dropped processors simply receive no tasks. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
