(** Graphviz DOT export of platforms (reproduces the paper's Figures 1 and
    5 as renderable graphs).  Nodes carry their work time, edges their link
    latency; the master is drawn as a doubled circle. *)

val of_chain : Chain.t -> string

val of_fork : Fork.t -> string

val of_spider : Spider.t -> string

val of_tree : Tree.t -> string

val of_platform : Parse.platform -> string
