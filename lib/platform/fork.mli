(** Fork (star) platforms (paper §6).

    A fork is a master directly connected to [m] slaves; slave [j] is
    reached through a link of latency [c j] and processes one task in
    [w j] time units.  Forks appear twice in the reproduction: as the
    substrate of the Beaumont et al. algorithm recalled in §6, and as the
    target of the chain→fork transformation of §7 (where slaves are
    single-task virtual nodes). *)

type t

val make : (int * int) array -> t
(** [make slaves] with [slaves.(j-1) = (c_j, w_j)].
    @raise Invalid_argument on an empty array or non-positive values. *)

val of_pairs : (int * int) list -> t

val slave_count : t -> int

val latency : t -> int -> int
(** [latency t j], [1 <= j <= slave_count t]. *)

val work : t -> int -> int
(** [work t j], [1 <= j <= slave_count t]. *)

val to_pairs : t -> (int * int) list

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val as_chains : t -> Chain.t array
(** Each slave viewed as a length-1 chain — a fork is the spider whose legs
    all have depth one. *)
