module Prng = Msts_util.Prng

type profile = {
  latency_min : int;
  latency_max : int;
  work_min : int;
  work_max : int;
}

let default_profile =
  { latency_min = 1; latency_max = 10; work_min = 1; work_max = 20 }

let balanced_profile =
  { latency_min = 1; latency_max = 10; work_min = 1; work_max = 10 }

let compute_bound_profile =
  { latency_min = 1; latency_max = 3; work_min = 10; work_max = 50 }

let comm_bound_profile =
  { latency_min = 5; latency_max = 20; work_min = 1; work_max = 5 }

let spread_profile ~mean_latency ~mean_work ~spread =
  if mean_latency <= 0 || mean_work <= 0 then
    invalid_arg "Generator.spread_profile: non-positive mean";
  if spread < 0.0 then invalid_arg "Generator.spread_profile: negative spread";
  let bounds mean =
    let m = float_of_int mean in
    ( max 1 (int_of_float (floor (m /. (1.0 +. spread)))),
      int_of_float (ceil (m *. (1.0 +. spread))) )
  in
  let latency_min, latency_max = bounds mean_latency in
  let work_min, work_max = bounds mean_work in
  { latency_min; latency_max; work_min; work_max }

let coefficient_of_variation values =
  let n = float_of_int (List.length values) in
  let mean = List.fold_left ( +. ) 0.0 values /. n in
  let var =
    List.fold_left (fun acc v -> acc +. ((v -. mean) *. (v -. mean))) 0.0 values /. n
  in
  if mean = 0.0 then 0.0 else sqrt var /. mean

let heterogeneity chain =
  let pairs = Chain.to_pairs chain in
  let latencies = List.map (fun (c, _) -> float_of_int c) pairs in
  let works = List.map (fun (_, w) -> float_of_int w) pairs in
  0.5 *. (coefficient_of_variation latencies +. coefficient_of_variation works)

let draw_latency rng profile = Prng.int_in rng profile.latency_min profile.latency_max

let draw_work rng profile = Prng.int_in rng profile.work_min profile.work_max

let chain rng profile ~p =
  if p <= 0 then invalid_arg "Generator.chain: p must be positive";
  let c = Array.init p (fun _ -> draw_latency rng profile) in
  let w = Array.init p (fun _ -> draw_work rng profile) in
  Chain.make ~c ~w

let fork rng profile ~slaves =
  if slaves <= 0 then invalid_arg "Generator.fork: slaves must be positive";
  Fork.make
    (Array.init slaves (fun _ -> (draw_latency rng profile, draw_work rng profile)))

let spider rng profile ~legs ~max_depth =
  if legs <= 0 then invalid_arg "Generator.spider: legs must be positive";
  if max_depth <= 0 then invalid_arg "Generator.spider: max_depth must be positive";
  Spider.make
    (Array.init legs (fun _ -> chain rng profile ~p:(Prng.int_in rng 1 max_depth)))

let tree rng profile ~nodes ~max_children =
  if nodes <= 0 then invalid_arg "Generator.tree: nodes must be positive";
  if max_children <= 0 then invalid_arg "Generator.tree: max_children must be positive";
  (* parent.(i) = -1 means the node hangs directly off the master. *)
  let parent = Array.make nodes (-1) in
  let child_count = Array.make (nodes + 1) 0 in
  (* slot nodes = master *)
  let slot i = if i = -1 then nodes else i in
  for i = 1 to nodes - 1 do
    let candidates =
      List.filter
        (fun j -> child_count.(slot j) < max_children)
        (-1 :: Msts_util.Intx.range 0 (i - 1))
    in
    let chosen =
      match candidates with
      | [] -> -1 (* master always accepts as a fallback *)
      | _ -> List.nth candidates (Prng.int rng (List.length candidates))
    in
    parent.(i) <- chosen;
    child_count.(slot chosen) <- child_count.(slot chosen) + 1
  done;
  child_count.(nodes) <- child_count.(nodes) + 1 (* node 0 is a master child *)
  ;
  let latency = Array.init nodes (fun _ -> draw_latency rng profile) in
  let work = Array.init nodes (fun _ -> draw_work rng profile) in
  let rec build i =
    let children =
      List.filter_map
        (fun j -> if parent.(j) = i then Some (build j) else None)
        (Msts_util.Intx.range 0 (nodes - 1))
    in
    Tree.node ~children ~latency:latency.(i) ~work:work.(i) ()
  in
  let top =
    List.filter_map
      (fun j -> if parent.(j) = -1 then Some (build j) else None)
      (Msts_util.Intx.range 0 (nodes - 1))
  in
  Tree.make top
