type t = { slaves : (int * int) array }

let make slaves =
  if Array.length slaves = 0 then invalid_arg "Fork.make: no slaves";
  Array.iter
    (fun (c, w) ->
      if c <= 0 || w <= 0 then invalid_arg "Fork.make: non-positive value")
    slaves;
  { slaves = Array.copy slaves }

let of_pairs pairs = make (Array.of_list pairs)

let slave_count t = Array.length t.slaves

let check_index t j =
  if j < 1 || j > slave_count t then
    invalid_arg
      (Printf.sprintf "Fork: slave %d outside 1..%d" j (slave_count t))

let latency t j =
  check_index t j;
  fst t.slaves.(j - 1)

let work t j =
  check_index t j;
  snd t.slaves.(j - 1)

let to_pairs t = Array.to_list t.slaves

let equal a b = a.slaves = b.slaves

let pp ppf t =
  let pair ppf (c, w) = Format.fprintf ppf "(c=%d,w=%d)" c w in
  Format.fprintf ppf "fork[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pair)
    (to_pairs t)

let to_string t = Format.asprintf "%a" pp t

let as_chains t =
  Array.map (fun (c, w) -> Chain.make ~c:[| c |] ~w:[| w |]) t.slaves
