let buffer_graph body =
  "digraph platform {\n  rankdir=LR;\n  master [shape=doublecircle, label=\"M\"];\n"
  ^ body ^ "}\n"

let node_line name work =
  Printf.sprintf "  %s [shape=circle, label=\"w=%d\"];\n" name work

let edge_line src dst latency =
  Printf.sprintf "  %s -> %s [label=\"c=%d\"];\n" src dst latency

let chain_body ~prefix ~attach chain =
  let buf = Buffer.create 128 in
  let p = Chain.length chain in
  for k = 1 to p do
    let name = Printf.sprintf "%s%d" prefix k in
    Buffer.add_string buf (node_line name (Chain.work chain k));
    let src = if k = 1 then attach else Printf.sprintf "%s%d" prefix (k - 1) in
    Buffer.add_string buf (edge_line src name (Chain.latency chain k))
  done;
  Buffer.contents buf

let of_chain chain = buffer_graph (chain_body ~prefix:"p" ~attach:"master" chain)

let of_fork fork =
  let buf = Buffer.create 128 in
  for j = 1 to Fork.slave_count fork do
    let name = Printf.sprintf "s%d" j in
    Buffer.add_string buf (node_line name (Fork.work fork j));
    Buffer.add_string buf (edge_line "master" name (Fork.latency fork j))
  done;
  buffer_graph (Buffer.contents buf)

let of_spider spider =
  let buf = Buffer.create 256 in
  for l = 1 to Spider.legs spider do
    Buffer.add_string buf
      (chain_body ~prefix:(Printf.sprintf "l%d_" l) ~attach:"master"
         (Spider.leg_chain spider l))
  done;
  buffer_graph (Buffer.contents buf)

let of_tree tree =
  let buf = Buffer.create 256 in
  let counter = ref 0 in
  let rec emit parent (n : Tree.node) =
    incr counter;
    let name = Printf.sprintf "t%d" !counter in
    Buffer.add_string buf (node_line name n.work);
    Buffer.add_string buf (edge_line parent name n.latency);
    List.iter (emit name) n.children
  in
  List.iter (emit "master") (Tree.roots tree);
  buffer_graph (Buffer.contents buf)

let of_platform = function
  | Parse.Chain_platform chain -> of_chain chain
  | Parse.Fork_platform fork -> of_fork fork
  | Parse.Spider_platform spider -> of_spider spider
  | Parse.Tree_platform tree -> of_tree tree
