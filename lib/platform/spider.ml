type t = { legs_ : Chain.t array }

type address = { leg : int; depth : int }

let make legs_ =
  if Array.length legs_ = 0 then invalid_arg "Spider.make: no legs";
  { legs_ = Array.copy legs_ }

let of_legs legs = make (Array.of_list legs)

let legs t = Array.length t.legs_

let leg_chain t l =
  if l < 1 || l > legs t then
    invalid_arg (Printf.sprintf "Spider.leg_chain: leg %d outside 1..%d" l (legs t));
  t.legs_.(l - 1)

let processor_count t =
  Array.fold_left (fun acc chain -> acc + Chain.length chain) 0 t.legs_

let addresses t =
  List.concat_map
    (fun l ->
      let chain = leg_chain t l in
      List.init (Chain.length chain) (fun i -> { leg = l; depth = i + 1 }))
    (List.init (legs t) (fun i -> i + 1))

let latency t { leg; depth } = Chain.latency (leg_chain t leg) depth

let work t { leg; depth } = Chain.work (leg_chain t leg) depth

let scale ?latency_factor ?work_factor t { leg; depth } =
  let chain = leg_chain t leg in
  make
    (Array.mapi
       (fun lidx c ->
         if lidx + 1 = leg then Chain.scale ?latency_factor ?work_factor chain ~at:depth
         else c)
       t.legs_)

let restrict t ~depths =
  if Array.length depths <> legs t then
    invalid_arg "Spider.restrict: one prefix length per leg required";
  Array.iteri
    (fun lidx d ->
      let len = Chain.length t.legs_.(lidx) in
      if d < 0 || d > len then
        invalid_arg
          (Printf.sprintf "Spider.restrict: leg %d prefix %d outside 0..%d"
             (lidx + 1) d len))
    depths;
  let kept =
    List.filter_map
      (fun lidx ->
        if depths.(lidx) = 0 then None
        else Some (Chain.prefix t.legs_.(lidx) depths.(lidx), lidx + 1))
      (List.init (legs t) Fun.id)
  in
  match kept with
  | [] -> None
  | _ ->
      Some
        ( make (Array.of_list (List.map fst kept)),
          Array.of_list (List.map snd kept) )

let of_chain chain = make [| chain |]

let of_fork fork = make (Fork.as_chains fork)

let equal a b =
  legs a = legs b
  && Array.for_all2 Chain.equal a.legs_ b.legs_

let pp ppf t =
  Format.fprintf ppf "spider{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Chain.pp)
    (Array.to_list t.legs_)

let to_string t = Format.asprintf "%a" pp t

let max_depth t =
  Array.fold_left (fun acc chain -> max acc (Chain.length chain)) 0 t.legs_
