type t = {
  c : int array; (* c.(k-1) = latency of link into processor k *)
  w : int array; (* w.(k-1) = work time of processor k *)
  cumulative_c : int array; (* cumulative_c.(k-1) = c_1 + ... + c_k *)
}

let make ~c ~w =
  let p = Array.length c in
  if p = 0 then invalid_arg "Msts.Chain.make: empty chain";
  if Array.length w <> p then invalid_arg "Msts.Chain.make: c/w length mismatch";
  Array.iter
    (fun x -> if x <= 0 then invalid_arg "Msts.Chain.make: non-positive latency")
    c;
  Array.iter
    (fun x -> if x <= 0 then invalid_arg "Msts.Chain.make: non-positive work time")
    w;
  let cumulative_c = Array.make p c.(0) in
  for k = 1 to p - 1 do
    cumulative_c.(k) <- cumulative_c.(k - 1) + c.(k)
  done;
  { c = Array.copy c; w = Array.copy w; cumulative_c }

let of_pairs pairs =
  let c = Array.of_list (List.map fst pairs) in
  let w = Array.of_list (List.map snd pairs) in
  make ~c ~w

let length t = Array.length t.c

let check_index t k name =
  if k < 1 || k > length t then
    invalid_arg (Printf.sprintf "Msts.Chain.%s: processor %d outside 1..%d" name k (length t))

let latency t k =
  check_index t k "latency";
  t.c.(k - 1)

let work t k =
  check_index t k "work";
  t.w.(k - 1)

let path_latency t k =
  check_index t k "path_latency";
  t.cumulative_c.(k - 1)

let drop_first t =
  if length t < 2 then invalid_arg "Msts.Chain.drop_first: chain of length 1";
  make ~c:(Array.sub t.c 1 (length t - 1)) ~w:(Array.sub t.w 1 (length t - 1))

let prefix t k =
  check_index t k "prefix";
  make ~c:(Array.sub t.c 0 k) ~w:(Array.sub t.w 0 k)

let to_pairs t = List.init (length t) (fun i -> (t.c.(i), t.w.(i)))

let scale ?(latency_factor = 1) ?(work_factor = 1) t ~at =
  check_index t at "scale";
  if latency_factor < 1 then invalid_arg "Msts.Chain.scale: latency_factor must be >= 1";
  if work_factor < 1 then invalid_arg "Msts.Chain.scale: work_factor must be >= 1";
  let c = Array.copy t.c and w = Array.copy t.w in
  c.(at - 1) <- c.(at - 1) * latency_factor;
  w.(at - 1) <- w.(at - 1) * work_factor;
  make ~c ~w

let equal a b = a.c = b.c && a.w = b.w

let pp ppf t =
  let pair ppf (c, w) = Format.fprintf ppf "(c=%d,w=%d)" c w in
  Format.fprintf ppf "chain[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pair)
    (to_pairs t)

let to_string t = Format.asprintf "%a" pp t

let master_only_makespan t n =
  if n < 0 then invalid_arg "Msts.Chain.master_only_makespan: negative n";
  if n = 0 then 0
  else t.c.(0) + ((n - 1) * max t.w.(0) t.c.(0)) + t.w.(0)

let total_work_rate t =
  Array.fold_left (fun acc w -> acc +. (1.0 /. float_of_int w)) 0.0 t.w
