type node = { latency : int; work : int; children : node list }

type t = { roots_ : node list }

let rec validate_node n =
  if n.latency <= 0 then invalid_arg "Tree: non-positive latency";
  if n.work <= 0 then invalid_arg "Tree: non-positive work";
  List.iter validate_node n.children

let make roots_ =
  if roots_ = [] then invalid_arg "Tree.make: empty tree";
  List.iter validate_node roots_;
  { roots_ }

let roots t = t.roots_

let node ?(children = []) ~latency ~work () =
  let n = { latency; work; children } in
  validate_node n;
  n

let rec node_count n = 1 + List.fold_left (fun acc child -> acc + node_count child) 0 n.children

let processor_count t = List.fold_left (fun acc n -> acc + node_count n) 0 t.roots_

let rec node_depth n =
  1 + List.fold_left (fun acc child -> max acc (node_depth child)) 0 n.children

let depth t = List.fold_left (fun acc n -> max acc (node_depth n)) 0 t.roots_

let rec node_is_path n =
  match n.children with
  | [] -> true
  | [ child ] -> node_is_path child
  | _ :: _ :: _ -> false

let is_chain t = match t.roots_ with [ n ] -> node_is_path n | _ -> false

let is_spider t = List.for_all node_is_path t.roots_

let path_to_chain n =
  let rec collect n acc =
    let acc = (n.latency, n.work) :: acc in
    match n.children with
    | [] -> List.rev acc
    | [ child ] -> collect child acc
    | _ :: _ :: _ -> assert false
  in
  Chain.of_pairs (collect n [])

let to_spider t =
  if is_spider t then Some (Spider.of_legs (List.map path_to_chain t.roots_))
  else None

type extraction_policy = Fastest_processor | Cheapest_link | Best_rate

let rec subtree_rate n =
  (1.0 /. float_of_int n.work)
  +. List.fold_left (fun acc child -> acc +. subtree_rate child) 0.0 n.children

let pick policy children =
  let better a b =
    match policy with
    | Fastest_processor -> if b.work < a.work then b else a
    | Cheapest_link -> if b.latency < a.latency then b else a
    | Best_rate -> if subtree_rate b > subtree_rate a then b else a
  in
  match children with
  | [] -> None
  | first :: rest -> Some (List.fold_left better first rest)

let extract_spider policy t =
  let rec leg n acc =
    let acc = (n.latency, n.work) :: acc in
    match pick policy n.children with
    | None -> List.rev acc
    | Some child -> leg child acc
  in
  Spider.of_legs (List.map (fun n -> Chain.of_pairs (leg n [])) t.roots_)

let rec pp_node ppf n =
  if n.children = [] then Format.fprintf ppf "(c=%d,w=%d)" n.latency n.work
  else
    Format.fprintf ppf "(c=%d,w=%d -> %a)" n.latency n.work
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         pp_node)
      n.children

let pp ppf t =
  Format.fprintf ppf "tree{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_node)
    t.roots_

let to_string t = Format.asprintf "%a" pp t
