(* One queue (shard) per worker, each behind its own mutex; a single
   pool-wide mutex/condition pair coordinates sleep and wake-up.

   Lock ordering: a thread holding the pool lock may take a shard lock
   (the sleep-path re-scan), but never the other way round — submitters
   release the shard lock before signalling.  This makes the classic
   lost-wakeup race impossible: a submitter's push happens-before its
   broadcast (both ordered by the pool lock against the worker's re-scan
   and wait). *)

module Obs = Msts_obs.Obs

type shard = { lock : Mutex.t; tasks : (unit -> unit) Queue.t }

type t = {
  size : int; (* requested worker count, >= 1 *)
  shards : shard array; (* one per worker; empty when size = 1 *)
  lock : Mutex.t;
  work : Condition.t;
  stop : bool Atomic.t;
  mutable workers : unit Domain.t array;
  next : int Atomic.t; (* round-robin submission cursor *)
  (* Asynchronous completions: every finished ticket bumps [completions]
     and broadcasts [complete]; when a completion pipe exists (created
     lazily by the first [completion_fd] call) one wake-up byte is also
     written so a select loop can sleep on the read end.  The pipe is
     never created for pools that are only ever [map]ed over. *)
  completions : int Atomic.t;
  complete_lock : Mutex.t;
  complete : Condition.t;
  pipe : (Unix.file_descr * Unix.file_descr) option Atomic.t;
}

type 'a ticket = ('a, exn) result option Atomic.t

let clamp_jobs j = max 1 (min 64 j)

let try_pop (shard : shard) =
  Mutex.lock shard.lock;
  let task =
    if Queue.is_empty shard.tasks then None else Some (Queue.pop shard.tasks)
  in
  Mutex.unlock shard.lock;
  task

(* Own shard first, then steal round-robin from the others. *)
let find_task t w =
  let rec scan i remaining =
    if remaining = 0 then None
    else
      match try_pop t.shards.(i) with
      | Some _ as task -> task
      | None -> scan ((i + 1) mod t.size) (remaining - 1)
  in
  scan w t.size

let rec worker_loop t w =
  match find_task t w with
  | Some task ->
      task ();
      worker_loop t w
  | None ->
      if not (Atomic.get t.stop) then begin
        Mutex.lock t.lock;
        (* Re-check under the pool lock; submitters broadcast under it. *)
        let idle =
          (not (Atomic.get t.stop))
          && Array.for_all
               (fun (shard : shard) ->
                 Mutex.lock shard.lock;
                 let empty = Queue.is_empty shard.tasks in
                 Mutex.unlock shard.lock;
                 empty)
               t.shards
        in
        if idle then Condition.wait t.work t.lock;
        Mutex.unlock t.lock;
        worker_loop t w
      end

let create ?jobs () =
  let size =
    clamp_jobs (match jobs with Some j -> j | None -> Domain.recommended_domain_count ())
  in
  let t =
    {
      size;
      shards =
        Array.init
          (if size > 1 then size else 0)
          (fun _ -> { lock = Mutex.create (); tasks = Queue.create () });
      lock = Mutex.create ();
      work = Condition.create ();
      stop = Atomic.make false;
      workers = [||];
      next = Atomic.make 0;
      completions = Atomic.make 0;
      complete_lock = Mutex.create ();
      complete = Condition.create ();
      pipe = Atomic.make None;
    }
  in
  if size > 1 then
    t.workers <- Array.init size (fun w -> Domain.spawn (fun () -> worker_loop t w));
  t

let jobs t = t.size

let enqueue_task t task =
  let shard = t.shards.(Atomic.fetch_and_add t.next 1 mod t.size) in
  Mutex.lock shard.lock;
  Queue.push task shard.tasks;
  Mutex.unlock shard.lock;
  Mutex.lock t.lock;
  Condition.broadcast t.work;
  Mutex.unlock t.lock

(* ---------- asynchronous submission ---------- *)

let wake_byte = Bytes.make 1 '!'

let signal_completion t =
  Atomic.incr t.completions;
  Mutex.lock t.complete_lock;
  Condition.broadcast t.complete;
  Mutex.unlock t.complete_lock;
  match Atomic.get t.pipe with
  | None -> ()
  | Some (_, w) -> (
      (* Best-effort wake-up: a full pipe already guarantees the reader
         has a pending readable event, and a closed one means shutdown. *)
      try ignore (Unix.write w wake_byte 0 1) with Unix.Unix_error _ -> ())

let completion_fd t =
  Mutex.lock t.lock;
  let r =
    match Atomic.get t.pipe with
    | Some (r, _) -> r
    | None ->
        let r, w = Unix.pipe ~cloexec:true () in
        Unix.set_nonblock r;
        Unix.set_nonblock w;
        Atomic.set t.pipe (Some (r, w));
        r
  in
  Mutex.unlock t.lock;
  r

let drain_buf = Bytes.create 4096

let drain_completions t =
  (match Atomic.get t.pipe with
  | None -> ()
  | Some (r, _) ->
      let rec slurp () =
        match Unix.read r drain_buf 0 (Bytes.length drain_buf) with
        | n when n > 0 -> slurp ()
        | _ -> ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            ()
      in
      slurp ());
  Atomic.exchange t.completions 0

let submit t f =
  let ticket = Atomic.make None in
  let scope = Obs.Scope.current () in
  let run () =
    Obs.Scope.set scope;
    let outcome = try Ok (f ()) with e -> Error e in
    Obs.Scope.set Obs.Scope.none;
    Atomic.set ticket (Some outcome);
    signal_completion t
  in
  if t.size <= 1 || Array.length t.workers = 0 then run ()
  else enqueue_task t run;
  ticket

let poll ticket = Atomic.get ticket

let await t ticket =
  let rec wait () =
    match Atomic.get ticket with
    | Some outcome -> outcome
    | None ->
        Mutex.lock t.complete_lock;
        (* Re-check under the lock: completions broadcast under it, so a
           result set between the check and the wait cannot be missed. *)
        if Atomic.get ticket = None then Condition.wait t.complete t.complete_lock;
        Mutex.unlock t.complete_lock;
        wait ()
  in
  wait ()

let map t f items =
  let n = Array.length items in
  if n = 0 then [||]
  else if t.size <= 1 || Array.length t.workers = 0 then Array.map f items
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let remaining = Atomic.make n in
    let done_lock = Mutex.create () in
    let all_done = Condition.create () in
    (* Carry the submitting domain's request scope onto the workers:
       events a worker emits while running [f] are attributed to the
       request that submitted the batch, not to whatever ran before. *)
    let scope = Obs.Scope.current () in
    Array.iteri
      (fun i item ->
        enqueue_task t (fun () ->
            Obs.Scope.set scope;
            (try results.(i) <- Some (f item)
             with e ->
               ignore (Atomic.compare_and_set first_error None (Some e)));
            Obs.Scope.set Obs.Scope.none;
            if Atomic.fetch_and_add remaining (-1) = 1 then begin
              Mutex.lock done_lock;
              Condition.broadcast all_done;
              Mutex.unlock done_lock
            end))
      items;
    Mutex.lock done_lock;
    while Atomic.get remaining > 0 do
      Condition.wait all_done done_lock
    done;
    Mutex.unlock done_lock;
    (match Atomic.get first_error with Some e -> raise e | None -> ());
    Array.map
      (function Some r -> r | None -> failwith "Pool.map: lost result")
      results
  end

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Mutex.lock t.lock;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers;
    t.workers <- [||];
    match Atomic.exchange t.pipe None with
    | None -> ()
    | Some (r, w) ->
        (try Unix.close r with Unix.Unix_error _ -> ());
        (try Unix.close w with Unix.Unix_error _ -> ())
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
