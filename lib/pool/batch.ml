module Parse = Msts_platform.Parse
module Lru = Msts_util.Lru
module Obs = Msts_obs.Obs

type request = {
  platform : Parse.platform;
  tasks : int option;
  deadline : int option;
}

type outcome = (Msts_schedule.Plan.t, string) result

let fingerprint { platform; tasks; deadline } =
  let objective = function None -> "-" | Some v -> string_of_int v in
  Printf.sprintf "%s\ntasks=%s deadline=%s"
    (Parse.platform_to_string platform)
    (objective tasks) (objective deadline)

(* ---------- the shared cache ---------- *)

type cache = { lock : Mutex.t; lru : (string, outcome) Lru.t }

let cache ~capacity = { lock = Mutex.create (); lru = Lru.create ~capacity }
let cache_capacity c = Lru.capacity c.lru
let cache_length c = Mutex.protect c.lock (fun () -> Lru.length c.lru)
let cache_find c fp = Mutex.protect c.lock (fun () -> Lru.find c.lru fp)
let cache_add c fp outcome = Mutex.protect c.lock (fun () -> Lru.add c.lru fp outcome)

(* ---------- batch driver ---------- *)

type stats = {
  jobs : int;
  requests : int;
  cache_hits : int;
  cache_misses : int;
  queue_wait_us : int;
  busy_us : int;
}

type resolution =
  | Cached of outcome (* found in the LRU on the coordinator's probe *)
  | Fresh of int (* index into the to-solve array *)
  | Duplicate of int (* same fingerprint as this earlier request *)

type plan = {
  requests : request array;
  fingerprints : string array;
  resolutions : resolution array;
  to_solve : int array; (* slot -> request index *)
  plan_cache : cache;
}

let shard ?cache:shared requests =
  let n = Array.length requests in
  let fingerprints = Array.map fingerprint requests in
  let plan_cache =
    match shared with
    | Some c -> c
    | None -> cache ~capacity:(max 1 n)
  in
  (* Sequential coordinator pass: duplicate detection and cache probes in
     submission order — the source of the determinism guarantee. *)
  let first_of = Hashtbl.create (2 * n) in
  let to_solve = ref [] in
  let n_solve = ref 0 in
  let resolutions =
    Array.init n (fun i ->
        let fp = fingerprints.(i) in
        match Hashtbl.find_opt first_of fp with
        | Some j -> Duplicate j
        | None -> (
            Hashtbl.add first_of fp i;
            match cache_find plan_cache fp with
            | Some outcome -> Cached outcome
            | None ->
                let slot = !n_solve in
                incr n_solve;
                to_solve := i :: !to_solve;
                Fresh slot))
  in
  { requests; fingerprints; resolutions;
    to_solve = Array.of_list (List.rev !to_solve); plan_cache }

let shard_count plan = Array.length plan.to_solve
let shard_request plan slot = plan.requests.(plan.to_solve.(slot))

let assemble plan ~jobs:used_jobs ~solved ~wait_us ~busy_us =
  let n = Array.length plan.requests in
  if Array.length solved <> shard_count plan then
    invalid_arg "Msts.Batch.assemble: solved array does not match the plan";
  (* hits = LRU hits + within-batch duplicates = everything not solved *)
  let hits = n - Array.length plan.to_solve in
  (* Sequential epilogue: insert fresh outcomes in submission order (so the
     eviction sequence is deterministic), then resolve duplicates. *)
  Array.iteri
    (fun slot outcome ->
      cache_add plan.plan_cache plan.fingerprints.(plan.to_solve.(slot)) outcome)
    solved;
  let outcomes =
    Array.map
      (function
        | Cached outcome -> outcome
        | Fresh slot -> solved.(slot)
        | Duplicate _ -> Error "unresolved") (* patched below *)
      plan.resolutions
  in
  Array.iteri
    (fun i resolution ->
      match resolution with
      | Duplicate j -> outcomes.(i) <- outcomes.(j)
      | _ -> ())
    plan.resolutions;
  let sum = Array.fold_left ( + ) 0 in
  let stats =
    {
      jobs = used_jobs;
      requests = n;
      cache_hits = hits;
      cache_misses = Array.length plan.to_solve;
      queue_wait_us = sum wait_us;
      busy_us = sum busy_us;
    }
  in
  Obs.count ~n:stats.requests "pool.requests";
  Obs.count ~n:stats.cache_hits "pool.cache_hits";
  Obs.count ~n:stats.cache_misses "pool.cache_misses";
  Obs.count ~n:stats.cache_misses "pool.solves";
  Obs.count ~n:stats.queue_wait_us "pool.queue_wait_us";
  Obs.count ~n:stats.busy_us "pool.busy_us";
  (* per-solve distributions behind the summed counters above *)
  Array.iter (fun w -> Obs.record "pool.queue_wait_us" w) wait_us;
  Array.iter (fun b -> Obs.record "pool.busy_us" b) busy_us;
  (outcomes, stats)

let run ?pool ?jobs ?cache:shared ~solve requests =
  let plan = shard ?cache:shared requests in
  let shards = shard_count plan in
  (* Fan the distinct misses over the pool; per-slot timing cells are
     written by exactly one worker each, read only after the barrier. *)
  let wait_us = Array.make shards 0 in
  let busy_us = Array.make shards 0 in
  let run_on pool =
    let submitted = Obs.now_us () in
    ( Pool.jobs pool,
      Pool.map pool
        (fun slot ->
          let started = Obs.now_us () in
          let outcome = solve (shard_request plan slot) in
          let finished = Obs.now_us () in
          wait_us.(slot) <- max 0 (started - submitted);
          busy_us.(slot) <- max 0 (finished - started);
          outcome)
        (Array.init shards Fun.id) )
  in
  let used_jobs, solved =
    Obs.span "pool.batch"
      ~args:[ ("requests", string_of_int (Array.length requests)) ]
      (fun () ->
        match pool with
        | Some pool -> run_on pool
        | None -> Pool.with_pool ?jobs run_on)
  in
  assemble plan ~jobs:used_jobs ~solved ~wait_us ~busy_us
