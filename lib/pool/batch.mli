(** Batch solving: fan a set of problems across a domain pool, with a
    bounded LRU solve cache shared behind a mutex.

    The driver is deliberately deterministic: results depend only on the
    requests (and the cache's prior content), never on the worker count or
    on scheduling, so [jobs = 1] and [jobs = 4] produce byte-identical
    outputs.  The argument, spelled out in docs/PERFORMANCE.md:

    {ol
    {- every request is fingerprinted on the {e canonical} platform
       serialisation plus the objective — the full key, not its hash;}
    {- cache probes, within-batch deduplication and cache insertions all
       run sequentially on the coordinating domain, in submission order,
       so the LRU's eviction sequence is a pure function of the request
       sequence;}
    {- worker domains only ever run [solve] on distinct fingerprints —
       pure, independent calls whose results land in per-request slots
       ({!Pool.map} preserves submission order).}}

    Observability: the coordinator wraps the run in a [pool.batch] span
    and emits [pool.requests], [pool.cache_hits], [pool.cache_misses],
    [pool.solves], [pool.queue_wait_us] and [pool.busy_us] counters.
    Workers aggregate their timings in per-domain (per-slot) cells on the
    fast path and never touch the sink ({!Msts_obs.Obs} is
    domain-local). *)

type request = {
  platform : Msts_platform.Parse.platform;
  tasks : int option;
  deadline : int option;
}
(** Same shape as [Msts.Solve.problem] (the facade re-exports this very
    type, so the two are interchangeable). *)

type outcome = (Msts_schedule.Plan.t, string) result

val fingerprint : request -> string
(** Canonical cache key: the platform's textual serialisation (the
    round-tripping {!Msts_platform.Parse.platform_to_string} form) plus
    the objective.  Equal fingerprints iff same platform and same
    objective. *)

(** {2 The shared solve cache} *)

type cache

val cache : capacity:int -> cache
(** A bounded LRU cache ({!Msts_util.Lru}) behind a mutex, safe to share
    across pools and batches.  @raise Invalid_argument if
    [capacity < 1]. *)

val cache_capacity : cache -> int

val cache_length : cache -> int
(** Current number of cached outcomes. *)

(** {2 Running a batch} *)

type stats = {
  jobs : int;  (** worker count actually used *)
  requests : int;
  cache_hits : int;
      (** requests served without a fresh solve: LRU hits plus duplicates
          of an earlier request in the same batch *)
  cache_misses : int;  (** = solves dispatched to the pool *)
  queue_wait_us : int;  (** summed submission-to-start latency *)
  busy_us : int;  (** summed worker time spent solving *)
}
(** Always: [requests = cache_hits + cache_misses]. *)

val run :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?cache:cache ->
  solve:(request -> outcome) ->
  request array ->
  outcome array * stats
(** [run ~solve requests] solves every request and returns the outcomes in
    submission order.  [?pool] reuses a running pool (its size wins over
    [?jobs]); otherwise a fresh pool of [?jobs] workers (default
    [Domain.recommended_domain_count ()]) is spun up and shut down.
    Without [?cache] a private throw-away cache sized to the batch is
    used, so within-batch deduplication still applies. *)

(** {2 Sharded execution}

    {!run} split into its two sequential coordinator halves, so a caller
    that owns its own scheduling — the [msts serve] engine interleaving
    one batch's problems with other clients' requests — can run the
    middle (the solves) as independent units on any pool, in any
    completion order, and still assemble the exact bytes {!run} would
    have produced: {!shard} performs the deduplication/cache-probe pass,
    the caller solves [shard_request plan slot] for every slot (each a
    distinct fingerprint, pure and independent), and {!assemble} inserts
    the outcomes into the cache in slot order (deterministic eviction),
    resolves duplicates, emits the [pool.*] counters and builds the
    {!stats}.  [run = shard; solve each slot on a pool; assemble]. *)

type plan
(** The frozen coordinator pass: per-request resolutions plus the
    distinct problems still to solve. *)

val shard : ?cache:cache -> request array -> plan
(** Probe the cache and deduplicate, in submission order.  Like {!run},
    a missing [?cache] means a private throw-away cache sized to the
    batch. *)

val shard_count : plan -> int
(** Distinct uncached problems — the units to solve. *)

val shard_request : plan -> int -> request
(** The slot's problem ([0 <= slot < shard_count]). *)

val assemble :
  plan ->
  jobs:int ->
  solved:outcome array ->
  wait_us:int array ->
  busy_us:int array ->
  outcome array * stats
(** Insert [solved] (slot-indexed, one per {!shard_count}) into the
    cache, resolve every request, and emit the [pool.*] telemetry on the
    calling domain.  [wait_us]/[busy_us] are per-slot timings summed into
    the stats ([jobs] is reported verbatim).  Call exactly once per
    plan.  @raise Invalid_argument on a mis-sized [solved] array. *)
