(** Fixed-size domain pool with a sharded work queue.

    [create ~jobs ()] spawns [jobs] worker domains ([Domain.spawn], no
    dependencies beyond the standard library).  Work is sharded round-robin
    across one queue per worker; an idle worker drains its own shard first
    and then steals from the others, so one expensive item cannot strand
    the rest of a batch behind it.

    {!map} returns results {e in submission order} regardless of which
    domain ran which item, and is the only way work enters the pool — each
    item's slot in the result array is fixed at submission, so results can
    be neither lost, duplicated nor reordered by scheduling.

    The function passed to {!map} runs on worker domains: it must not
    touch shared mutable state.  Solver calls are pure, and the
    observability layer is domain-local ({!Msts_obs.Obs}), so worker-side
    [span]/[count] calls hit the null sink and are free.  {!map} does
    carry the submitting domain's {!Msts_obs.Obs.Scope} onto the worker
    for each item (set before [f], reset after), so a worker that {e
    does} install a sink attributes its events to the request that
    submitted the work.

    A pool with [jobs <= 1] spawns no domains at all; {!map} then runs
    inline on the caller, which is the baseline the differential tests
    compare against. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] starts the workers.  [jobs] defaults to
    [Domain.recommended_domain_count ()] and is clamped to [1..64]. *)

val jobs : t -> int
(** Worker count (>= 1). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f items] applies [f] to every item on the pool and returns the
    results in the order of [items].  Blocks until every item finished.
    If any [f] raises, the first exception (in completion order) is
    re-raised after the whole batch has drained.  Not re-entrant: one
    [map] at a time per pool. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent; {!map} after [shutdown] runs
    inline. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)
