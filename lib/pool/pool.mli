(** Fixed-size domain pool with a sharded work queue.

    [create ~jobs ()] spawns [jobs] worker domains ([Domain.spawn], no
    dependencies beyond the standard library).  Work is sharded round-robin
    across one queue per worker; an idle worker drains its own shard first
    and then steals from the others, so one expensive item cannot strand
    the rest of a batch behind it.

    {!map} returns results {e in submission order} regardless of which
    domain ran which item, and is the only way work enters the pool — each
    item's slot in the result array is fixed at submission, so results can
    be neither lost, duplicated nor reordered by scheduling.

    The function passed to {!map} runs on worker domains: it must not
    touch shared mutable state.  Solver calls are pure, and the
    observability layer is domain-local ({!Msts_obs.Obs}), so worker-side
    [span]/[count] calls hit the null sink and are free.  {!map} does
    carry the submitting domain's {!Msts_obs.Obs.Scope} onto the worker
    for each item (set before [f], reset after), so a worker that {e
    does} install a sink attributes its events to the request that
    submitted the work.

    A pool with [jobs <= 1] spawns no domains at all; {!map} then runs
    inline on the caller, which is the baseline the differential tests
    compare against. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] starts the workers.  [jobs] defaults to
    [Domain.recommended_domain_count ()] and is clamped to [1..64]. *)

val jobs : t -> int
(** Worker count (>= 1). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f items] applies [f] to every item on the pool and returns the
    results in the order of [items].  Blocks until every item finished.
    If any [f] raises, the first exception (in completion order) is
    re-raised after the whole batch has drained.  Not re-entrant: one
    [map] at a time per pool. *)

(** {2 Asynchronous submission}

    The daemon-facing half of the pool: {!submit} hands one thunk to a
    worker and returns immediately with a {!ticket}; the caller collects
    results later with {!poll} (non-blocking), {!await} (blocking), or —
    the select-loop shape — by sleeping on {!completion_fd} and calling
    {!drain_completions} when it turns readable.  Like {!map}, [submit]
    carries the submitting domain's {!Msts_obs.Obs.Scope} onto the worker
    for the duration of the thunk.

    On a pool with no worker domains ([jobs <= 1], or after {!shutdown})
    the thunk runs inline on the caller and the ticket is already
    completed when [submit] returns — the degenerate case a single-core
    deployment exercises, with the exact same observable protocol. *)

type 'a ticket
(** A handle to one submitted thunk's eventual result. *)

val submit : t -> (unit -> 'a) -> 'a ticket
(** Run the thunk on a worker domain (or inline, see above).  Never
    blocks on worker availability: work queues in the pool's sharded
    run queue.  An exception raised by the thunk is captured in the
    ticket, never thrown at the submitter asynchronously. *)

val poll : 'a ticket -> ('a, exn) result option
(** [None] while the thunk is still queued or running; [Some] forever
    after.  Never blocks. *)

val await : t -> 'a ticket -> ('a, exn) result
(** Block until the ticket completes.  Intended for drain paths and
    tests; select loops should prefer {!completion_fd}. *)

val completion_fd : t -> Unix.file_descr
(** The read end of the pool's completion self-pipe, created on first
    use (pools that are only [map]ed over never pay for it).  It becomes
    readable when a submitted thunk completes; owned by the pool and
    closed by {!shutdown} — do not close or read it directly, call
    {!drain_completions}. *)

val drain_completions : t -> int
(** Consume all pending wake-up bytes (non-blocking) and return how many
    tickets completed since the previous drain.  Returns 0 (and reads
    nothing) when no completions are pending. *)

val shutdown : t -> unit
(** Stop and join the workers.  Idempotent; {!map} after [shutdown] runs
    inline. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)
