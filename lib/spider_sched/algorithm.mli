(** The spider algorithm (paper §7).

    Five steps for a deadline [T_lim] and a task budget [n]:

    + run the deadline chain algorithm on every leg;
    + turn each scheduled task into a single-task virtual node
      ({!Transform});
    + allocate with the fork algorithm ({!Msts_fork.Allocator});
    + map accepted nodes back to leg tasks (the last [k] of each leg);
    + re-stamp their first emissions with the allocator's one-port schedule
      (always earlier, Lemma 3) and keep everything else unchanged.

    Theorem 3 proves the result schedules the maximum number of tasks
    within [T_lim]; Theorem 2 bounds the cost by [O(n²p²)].  The optimal
    makespan for exactly [n] tasks follows by binary search on [T_lim]. *)

val leg_schedules :
  ?budget:int -> Msts_platform.Spider.t -> deadline:int -> Msts_schedule.Schedule.t array
(** Step 1: [leg_schedules spider ~deadline].(l-1) is leg [l]'s deadline
    schedule (at most [budget] tasks each). *)

val virtual_fork :
  Msts_platform.Spider.t -> deadline:int -> Msts_schedule.Schedule.t array ->
  Msts_fork.Expansion.vnode list
(** Steps 2–3's input: all legs' virtual nodes. *)

val schedule :
  ?budget:int -> Msts_platform.Spider.t -> deadline:int -> Msts_schedule.Spider_schedule.t
(** The full five steps.  Task count is maximal within [deadline] (capped by
    [budget] when given); tasks are numbered in emission order.
    @raise Invalid_argument on a negative deadline or budget. *)

val max_tasks : ?budget:int -> Msts_platform.Spider.t -> deadline:int -> int

val min_makespan : Msts_platform.Spider.t -> int -> int
(** Least deadline that fits [n] tasks (binary search over {!max_tasks};
    the staircase is monotone).  0 when [n = 0].  The search is
    warm-started at {!Msts_schedule.Bounds.spider_combined_bound}; on the
    fast kernel ({!Msts_chain.Kernel.default}) each leg's backward
    construction runs once at the search ceiling and every probe replays
    it by shift invariance ([spider.leg_reuses] counts the replays),
    instead of re-running the deadline kernel per probe. *)

val schedule_tasks : Msts_platform.Spider.t -> int -> Msts_schedule.Spider_schedule.t
(** Optimal-makespan schedule for exactly [n] tasks. *)

val makespan_upper_bound : Msts_platform.Spider.t -> int -> int
(** Cheap safe upper bound used to seed the binary search: best
    single-leg master-only makespan. *)
