(** Narrated runs of the spider algorithm.

    Records the §7 pipeline for one deadline: each leg's deadline schedule
    (step 1), the virtual fork (steps 2–3), the allocation with its
    one-port emission order (step 4) and the reversion to leg tasks
    (step 5).  Drives the CLI's [explain] command on spider platforms and
    the tests that pin the pipeline's intermediate artefacts. *)

type step5 = {
  position : int;  (** emission position on the master's port *)
  leg : int;
  leg_task : int;  (** task index within the leg's deadline schedule *)
  emission : int;  (** re-stamped first emission *)
  original_emission : int;  (** the leg schedule's own [C¹] *)
  virtual_work : int;
}

type t = {
  spider : Msts_platform.Spider.t;
  deadline : int;
  leg_schedules : Msts_schedule.Schedule.t array;
  virtual_nodes : Msts_fork.Expansion.vnode list;  (** allocation order *)
  accepted : step5 list;  (** emission order *)
  result : Msts_schedule.Spider_schedule.t;
}

val run : ?budget:int -> Msts_platform.Spider.t -> deadline:int -> t

val render : t -> string
(** Multi-line narrative of all five steps. *)

val pp : Format.formatter -> t -> unit
