module Spider = Msts_platform.Spider
module Chain = Msts_platform.Chain
module Schedule = Msts_schedule.Schedule
module Spider_schedule = Msts_schedule.Spider_schedule
module Allocator = Msts_fork.Allocator
module Deadline = Msts_chain.Deadline
module Obs = Msts_obs.Obs

let leg_schedules ?(budget = max_int) spider ~deadline =
  Obs.span "spider.leg_schedules" ~args:[ ("deadline", string_of_int deadline) ]
  @@ fun () ->
  Array.init (Spider.legs spider) (fun idx ->
      Deadline.schedule ~max_tasks:budget
        (Spider.leg_chain spider (idx + 1))
        ~deadline)

let virtual_fork spider ~deadline legs =
  List.concat_map
    (fun l -> Transform.virtual_nodes ~leg:l ~deadline legs.(l - 1))
    (Msts_util.Intx.range 1 (Spider.legs spider))

let schedule ?(budget = max_int) spider ~deadline =
  if deadline < 0 then invalid_arg "Spider algorithm: negative deadline";
  if budget < 0 then invalid_arg "Spider algorithm: negative budget";
  Obs.span "spider.schedule" ~args:[ ("deadline", string_of_int deadline) ]
  @@ fun () ->
  let legs = leg_schedules ~budget spider ~deadline in
  let nodes = virtual_fork spider ~deadline legs in
  let allocations = Allocator.allocate nodes ~deadline ~budget in
  let entry_of { Allocator.node; emission; _ } =
    let leg = node.Msts_fork.Expansion.slave in
    let leg_sched = legs.(leg - 1) in
    let task = Transform.task_of_rank leg_sched ~rank:node.Msts_fork.Expansion.rank in
    let original = Schedule.entry leg_sched task in
    let comms = Array.copy original.comms in
    (* Lemma 3: the allocator's emission is never later than the original
       first emission, so only this coordinate changes. *)
    comms.(0) <- emission;
    {
      Spider_schedule.address = { Spider.leg; depth = original.proc };
      start = original.start;
      comms;
    }
  in
  let ordered =
    List.sort
      (fun a b -> Int.compare a.Allocator.position b.Allocator.position)
      allocations
  in
  Spider_schedule.make spider (Array.of_list (List.map entry_of ordered))

let max_tasks ?budget spider ~deadline =
  Spider_schedule.task_count (schedule ?budget spider ~deadline)

let makespan_upper_bound spider n =
  let best = ref max_int in
  for l = 1 to Spider.legs spider do
    best := min !best (Chain.master_only_makespan (Spider.leg_chain spider l) n)
  done;
  !best

let min_makespan spider n =
  if n < 0 then invalid_arg "Spider algorithm: negative task count";
  if n = 0 then 0
  else begin
    Obs.span "spider.min_makespan" ~args:[ ("n", string_of_int n) ] @@ fun () ->
    let hi = makespan_upper_bound spider n in
    match
      Msts_util.Intx.binary_search_least ~lo:0 ~hi (fun d ->
          Obs.count "spider.search_probes";
          max_tasks ~budget:n spider ~deadline:d >= n)
    with
    | Some d -> d
    | None -> hi (* unreachable: a master-only leg schedule meets [hi] *)
  end

let schedule_tasks spider n =
  schedule ~budget:n spider ~deadline:(min_makespan spider n)
