module Spider = Msts_platform.Spider
module Chain = Msts_platform.Chain
module Schedule = Msts_schedule.Schedule
module Spider_schedule = Msts_schedule.Spider_schedule
module Allocator = Msts_fork.Allocator
module Deadline = Msts_chain.Deadline
module Obs = Msts_obs.Obs

let leg_schedules ?(budget = max_int) spider ~deadline =
  Obs.span "spider.leg_schedules" ~args:[ ("deadline", string_of_int deadline) ]
  @@ fun () ->
  Array.init (Spider.legs spider) (fun idx ->
      Deadline.schedule ~max_tasks:budget
        (Spider.leg_chain spider (idx + 1))
        ~deadline)

let virtual_fork spider ~deadline legs =
  List.concat_map
    (fun l -> Transform.virtual_nodes ~leg:l ~deadline legs.(l - 1))
    (Msts_util.Intx.range 1 (Spider.legs spider))

let schedule ?(budget = max_int) spider ~deadline =
  if deadline < 0 then invalid_arg "Spider algorithm: negative deadline";
  if budget < 0 then invalid_arg "Spider algorithm: negative budget";
  Obs.span "spider.schedule" ~args:[ ("deadline", string_of_int deadline) ]
  @@ fun () ->
  let legs = leg_schedules ~budget spider ~deadline in
  let nodes = virtual_fork spider ~deadline legs in
  let allocations = Allocator.allocate nodes ~deadline ~budget in
  let entry_of { Allocator.node; emission; _ } =
    let leg = node.Msts_fork.Expansion.slave in
    let leg_sched = legs.(leg - 1) in
    let task = Transform.task_of_rank leg_sched ~rank:node.Msts_fork.Expansion.rank in
    let original = Schedule.entry leg_sched task in
    let comms = Array.copy original.comms in
    (* Lemma 3: the allocator's emission is never later than the original
       first emission, so only this coordinate changes. *)
    comms.(0) <- emission;
    {
      Spider_schedule.address = { Spider.leg; depth = original.proc };
      start = original.start;
      comms;
    }
  in
  let ordered =
    List.sort
      (fun a b -> Int.compare a.Allocator.position b.Allocator.position)
      allocations
  in
  Spider_schedule.make spider (Array.of_list (List.map entry_of ordered))

let max_tasks ?budget spider ~deadline =
  Spider_schedule.task_count (schedule ?budget spider ~deadline)

let makespan_upper_bound spider n =
  let best = ref max_int in
  for l = 1 to Spider.legs spider do
    best := min !best (Chain.master_only_makespan (Spider.leg_chain spider l) n)
  done;
  !best

(* Leg cache for the binary search: the backward construction is shift
   invariant — at horizon [d] it is the one at horizon [H], translated by
   [H − d], truncated where the first emission would cross time 0.  So
   each leg is constructed ONCE at the search ceiling, each placement is
   stamped with its margin (the least deadline that admits it, strictly
   increasing in placement order), and every probe reads its leg
   schedules off the cache with a bisection and an O(tasks) shift instead
   of re-running the kernel. *)
module Leg_cache = struct
  type leg = {
    chain : Chain.t;
    horizon : int;
    entries : Schedule.entry array;
        (* placement order (latest emission first), dates absolute at
           [horizon] *)
    margins : int array; (* margins.(i) = horizon − first emission of i *)
  }

  let build_leg chain ~horizon ~budget =
    let construction = Msts_chain.Incremental.create chain ~horizon in
    let placed = Msts_chain.Incremental.fill construction ~max_tasks:budget () in
    let sched = Msts_chain.Incremental.schedule construction in
    (* [sched] lists tasks in emission order; placement order is its
       reverse. *)
    let entries =
      Array.init placed (fun i -> Schedule.entry sched (placed - i))
    in
    let margins =
      Array.map
        (fun e ->
          horizon - Msts_schedule.Comm_vector.first_emission e.Schedule.comms)
        entries
    in
    { chain; horizon; entries; margins }

  let build spider ~horizon ~budget =
    Array.init (Spider.legs spider) (fun idx ->
        build_leg (Spider.leg_chain spider (idx + 1)) ~horizon ~budget)

  let leg_schedule_at { chain; horizon; entries; margins } ~deadline =
    let m = Msts_util.Intx.count_leq margins deadline in
    let shift = horizon - deadline in
    Schedule.make chain
      (Array.init m (fun j ->
           let e = entries.(m - 1 - j) in
           {
             e with
             Schedule.start = e.Schedule.start - shift;
             comms = Array.map (fun t -> t - shift) e.Schedule.comms;
           }))

  let max_tasks cache spider ~deadline ~budget =
    Obs.count ~n:(Array.length cache) "spider.leg_reuses";
    let legs = Array.map (leg_schedule_at ~deadline) cache in
    let nodes = virtual_fork spider ~deadline legs in
    List.length (Allocator.allocate nodes ~deadline ~budget)
end

let min_makespan spider n =
  if n < 0 then invalid_arg "Spider algorithm: negative task count";
  if n = 0 then 0
  else begin
    Obs.span "spider.min_makespan" ~args:[ ("n", string_of_int n) ] @@ fun () ->
    let hi = makespan_upper_bound spider n in
    (* Warm start: every spider bound is provably <= OPT. *)
    let lo = Msts_schedule.Bounds.spider_combined_bound spider n in
    let probe =
      match Msts_chain.Kernel.default () with
      | Msts_chain.Kernel.Reference ->
          fun d ->
            Obs.count "spider.search_probes";
            max_tasks ~budget:n spider ~deadline:d >= n
      | Msts_chain.Kernel.Fast ->
          let cache = Leg_cache.build spider ~horizon:hi ~budget:n in
          fun d ->
            Obs.count "spider.search_probes";
            Leg_cache.max_tasks cache spider ~deadline:d ~budget:n >= n
    in
    match Msts_util.Intx.binary_search_least ~lo ~hi probe with
    | Some d -> d
    | None -> hi (* unreachable: a master-only leg schedule meets [hi] *)
  end

let schedule_tasks spider n =
  schedule ~budget:n spider ~deadline:(min_makespan spider n)
