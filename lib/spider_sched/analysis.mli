(** How optimal schedules use a spider.

    The spider counterpart of {!Msts_chain.Analysis}: which legs carry the
    batch, how the split evolves with [n], and how saturated the master's
    port — the paper's central resource — becomes. *)

val tasks_per_leg : Msts_platform.Spider.t -> int -> int array
(** Index [l-1]: tasks routed down leg [l] in the optimal [n]-task
    schedule.  Entries sum to [n]. *)

val leg_activation :
  Msts_platform.Spider.t -> leg:int -> max_n:int -> int option
(** Least [n ≤ max_n] whose optimal schedule routes a task down [leg]. *)

val port_utilisation : Msts_platform.Spider.t -> int -> float
(** Busy fraction of the master's port in the optimal [n]-task schedule
    (0.0 when [n = 0]). *)

val split_profile :
  Msts_platform.Spider.t -> ns:int list -> (int * int array) list
(** [(n, tasks_per_leg n)] for each requested [n]. *)

val rate_agreement : Msts_platform.Spider.t -> int -> float array
(** Per-leg ratio between the measured share of the batch and the
    bandwidth-centric steady-state share — 1.0 everywhere means the finite
    schedule already distributes like the asymptotic optimum.  Legs with a
    zero steady-state rate report 0.0 when idle and [infinity] when used. *)
