(** Chain → fork transformation (paper §7, Figure 7).

    Given a leg's deadline schedule (built by {!Msts_chain.Deadline}), each
    scheduled task becomes a single-task virtual node seen from the master:
    its transfer costs [c₁] (the leg's first link) and, once the transfer
    completes, it needs [T_lim − C¹ᵢ − c₁] time units — the slack the chain
    schedule leaves after the task's first emission.  The node can therefore
    absorb {e any} emission time ≤ the original [C¹ᵢ] and still finish by
    [T_lim] (Lemma 3).

    Ranks are assigned from the end of the leg schedule (rank 0 = latest
    emission = smallest remaining work), so that the fork allocator's
    per-slave prefix property maps accepted nodes back to the {e last}
    [k] tasks of the leg schedule — exactly the suffix the incremental
    optimality of the chain algorithm (Lemma 4) makes self-contained. *)

val virtual_nodes :
  leg:int -> deadline:int -> Msts_schedule.Schedule.t -> Msts_fork.Expansion.vnode list
(** One node per task of the leg schedule, tagged [slave = leg].
    @raise Invalid_argument if a task's slack would be negative (the leg
    schedule does not fit the deadline). *)

val task_of_rank : Msts_schedule.Schedule.t -> rank:int -> int
(** The leg-schedule task index (1-based, emission order) carrying a given
    rank. *)
