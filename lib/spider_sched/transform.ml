module Schedule = Msts_schedule.Schedule
module Comm_vector = Msts_schedule.Comm_vector
module Chain = Msts_platform.Chain
module Expansion = Msts_fork.Expansion

let virtual_nodes ~leg ~deadline sched =
  let chain = Schedule.chain sched in
  let c1 = Chain.latency chain 1 in
  let m = Schedule.task_count sched in
  Msts_obs.Obs.count ~n:m "spider.virtual_nodes";
  List.map
    (fun task ->
      let first = Comm_vector.first_emission (Schedule.entry sched task).comms in
      let work = deadline - first - c1 in
      if work < 0 then
        invalid_arg
          (Printf.sprintf
             "Transform.virtual_nodes: task %d emitted at %d exceeds deadline %d"
             task first deadline);
      { Expansion.slave = leg; rank = m - task; comm = c1; work })
    (Msts_util.Intx.range 1 m)

let task_of_rank sched ~rank =
  let m = Schedule.task_count sched in
  if rank < 0 || rank >= m then
    invalid_arg (Printf.sprintf "Transform.task_of_rank: rank %d outside 0..%d" rank (m - 1));
  m - rank
