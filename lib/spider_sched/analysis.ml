module Spider = Msts_platform.Spider
module Spider_schedule = Msts_schedule.Spider_schedule

let tasks_per_leg spider n =
  let sched = Algorithm.schedule_tasks spider n in
  Array.init (Spider.legs spider) (fun idx ->
      List.length (Spider_schedule.tasks_on_leg sched (idx + 1)))

let leg_activation spider ~leg ~max_n =
  if leg < 1 || leg > Spider.legs spider then
    invalid_arg "Analysis.leg_activation: leg out of range";
  let rec scan n =
    if n > max_n then None
    else if (tasks_per_leg spider n).(leg - 1) > 0 then Some n
    else scan (n + 1)
  in
  scan 1

let port_utilisation spider n =
  if n = 0 then 0.0
  else begin
    let sched = Algorithm.schedule_tasks spider n in
    Msts_schedule.Intervals.utilisation
      (Spider_schedule.master_port_intervals sched)
      ~horizon:(Spider_schedule.makespan sched)
  end

let split_profile spider ~ns = List.map (fun n -> (n, tasks_per_leg spider n)) ns

(* Local copy of the bandwidth-centric rates (the full analysis lives in
   Msts_baseline.Steady_state, above this library in the dependency
   order). *)
let steady_rates spider =
  let chain_rate chain =
    let p = Msts_platform.Chain.length chain in
    let rec rho j =
      if j > p then 0.0
      else
        min
          (1.0 /. float_of_int (Msts_platform.Chain.latency chain j))
          ((1.0 /. float_of_int (Msts_platform.Chain.work chain j)) +. rho (j + 1))
    in
    rho 1
  in
  let legs = Spider.legs spider in
  let order = Array.init legs (fun idx -> idx) in
  Array.sort
    (fun a b ->
      Int.compare
        (Msts_platform.Chain.latency (Spider.leg_chain spider (a + 1)) 1)
        (Msts_platform.Chain.latency (Spider.leg_chain spider (b + 1)) 1))
    order;
  let rates = Array.make legs 0.0 in
  let port_left = ref 1.0 in
  Array.iter
    (fun idx ->
      let chain = Spider.leg_chain spider (idx + 1) in
      let c1 = float_of_int (Msts_platform.Chain.latency chain 1) in
      let rate = min (chain_rate chain) (!port_left /. c1) in
      rates.(idx) <- rate;
      port_left := !port_left -. (rate *. c1))
    order;
  rates

let rate_agreement spider n =
  let counts = tasks_per_leg spider n in
  let rates = steady_rates spider in
  let total_rate = Array.fold_left ( +. ) 0.0 rates in
  Array.mapi
    (fun idx count ->
      let measured = float_of_int count /. float_of_int (max n 1) in
      let predicted = rates.(idx) /. total_rate in
      if predicted = 0.0 then if count = 0 then 0.0 else infinity
      else measured /. predicted)
    counts
