module Spider = Msts_platform.Spider
module Schedule = Msts_schedule.Schedule
module Comm_vector = Msts_schedule.Comm_vector
module Allocator = Msts_fork.Allocator
module Expansion = Msts_fork.Expansion

type step5 = {
  position : int;
  leg : int;
  leg_task : int;
  emission : int;
  original_emission : int;
  virtual_work : int;
}

type t = {
  spider : Spider.t;
  deadline : int;
  leg_schedules : Schedule.t array;
  virtual_nodes : Expansion.vnode list;
  accepted : step5 list;
  result : Msts_schedule.Spider_schedule.t;
}

let run ?(budget = max_int) spider ~deadline =
  let leg_schedules = Algorithm.leg_schedules ~budget spider ~deadline in
  let virtual_nodes =
    Expansion.allocation_order (Algorithm.virtual_fork spider ~deadline leg_schedules)
  in
  let allocations = Allocator.allocate virtual_nodes ~deadline ~budget in
  let accepted =
    List.map
      (fun { Allocator.node; emission; position } ->
        let leg = node.Expansion.slave in
        let leg_task =
          Transform.task_of_rank leg_schedules.(leg - 1) ~rank:node.Expansion.rank
        in
        {
          position;
          leg;
          leg_task;
          emission;
          original_emission =
            Comm_vector.first_emission
              (Schedule.entry leg_schedules.(leg - 1) leg_task).comms;
          virtual_work = node.Expansion.work;
        })
      (List.sort
         (fun a b -> Int.compare a.Allocator.position b.Allocator.position)
         allocations)
  in
  {
    spider;
    deadline;
    leg_schedules;
    virtual_nodes;
    accepted;
    result = Algorithm.schedule ~budget spider ~deadline;
  }

let render t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "Spider algorithm, T_lim = %d, on %s\n" t.deadline
    (Spider.to_string t.spider);
  Printf.bprintf buf "\nStep 1 - deadline schedules per leg:\n";
  Array.iteri
    (fun idx leg_sched ->
      Printf.bprintf buf "  leg %d: %d tasks fit by %d\n" (idx + 1)
        (Schedule.task_count leg_sched) t.deadline)
    t.leg_schedules;
  Printf.bprintf buf
    "\nSteps 2-3 - virtual fork (one single-task node per leg task):\n";
  List.iter
    (fun v ->
      Printf.bprintf buf "  leg %d rank %d: comm %d, remaining work %d\n"
        v.Expansion.slave v.Expansion.rank v.Expansion.comm v.Expansion.work)
    t.virtual_nodes;
  Printf.bprintf buf
    "\nStep 4 - greedy one-port allocation (emissions back-to-back, \
     decreasing remaining work):\n";
  List.iter
    (fun a ->
      Printf.bprintf buf
        "  #%d: leg %d task %d, emit at %d (leg plan had %d; Lemma 3: never \
         later), work %d\n"
        (a.position + 1) a.leg a.leg_task a.emission a.original_emission
        a.virtual_work)
    t.accepted;
  Printf.bprintf buf "\nStep 5 - reverted spider schedule: %d tasks, makespan %d\n"
    (Msts_schedule.Spider_schedule.task_count t.result)
    (Msts_schedule.Spider_schedule.makespan t.result);
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
