module Fork = Msts_platform.Fork

type vnode = { slave : int; rank : int; comm : int; work : int }

let virtual_work ~c ~w ~rank = w + (rank * max c w)

let compare_alloc a b =
  let by_comm = Int.compare a.comm b.comm in
  if by_comm <> 0 then by_comm
  else begin
    let by_work = Int.compare a.work b.work in
    if by_work <> 0 then by_work
    else begin
      let by_slave = Int.compare a.slave b.slave in
      if by_slave <> 0 then by_slave else Int.compare a.rank b.rank
    end
  end

let allocation_order nodes = List.sort compare_alloc nodes

let expand fork ~count =
  if count < 0 then invalid_arg "Expansion.expand: negative count";
  let per_slave j =
    let c = Fork.latency fork j and w = Fork.work fork j in
    List.init count (fun rank ->
        { slave = j; rank; comm = c; work = virtual_work ~c ~w ~rank })
  in
  allocation_order
    (List.concat_map per_slave
       (Msts_util.Intx.range 1 (Fork.slave_count fork)))

let pp ppf v =
  Format.fprintf ppf "vnode(slave=%d, rank=%d, c=%d, W=%d)" v.slave v.rank
    v.comm v.work
