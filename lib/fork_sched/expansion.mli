(** Virtual-node expansion of fork slaves (paper §6, Figure 6).

    A slave [(c, w)] that may run any number of tasks is replaced by a bank
    of single-task virtual slaves [(c, w + r·m)] for ranks [r = 0, 1, ...]
    with [m = max(c, w)]: if a slave completes [k] tasks by the deadline,
    its [j]-th-from-last task behaves — seen from the master's port — like a
    dedicated processor needing [w + (j−1)·m] time after its transfer.
    After this transformation the master's outgoing port is the only shared
    resource, which is what makes the greedy allocation argument work. *)

type vnode = {
  slave : int;  (** originating slave (or spider leg), 1-indexed *)
  rank : int;  (** 0-based rank within the slave's bank *)
  comm : int;  (** transfer time on the master's port *)
  work : int;  (** remaining time needed after the transfer completes *)
}

val virtual_work : c:int -> w:int -> rank:int -> int
(** [w + rank·max(c,w)]. *)

val expand : Msts_platform.Fork.t -> count:int -> vnode list
(** Bank of [count] virtual nodes per slave, sorted in allocation order:
    ascending [comm], ties by ascending [work] (paper §6), then by slave
    index for determinism. *)

val allocation_order : vnode list -> vnode list
(** Sort arbitrary virtual nodes (e.g. those built by the spider
    transformation) in the same allocation order. *)

val pp : Format.formatter -> vnode -> unit
