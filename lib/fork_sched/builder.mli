(** From an allocation to an executable fork schedule.

    Realises an {!Allocator} result as a concrete {!Msts_schedule}
    spider schedule (a fork is a depth-1 spider): transfers back-to-back on
    the master's port in the allocator's emission order, and each slave
    executing its tasks as soon as received (ASAP).  The virtual-node
    ranks guarantee every task still meets the deadline; the independent
    feasibility checker confirms it in the tests. *)

val schedule :
  Msts_platform.Fork.t -> deadline:int -> budget:int -> Msts_schedule.Spider_schedule.t
(** Run expansion + allocation and realise the result.  The schedule
    contains [Allocator.max_tasks] tasks. *)

val realise :
  Msts_platform.Fork.t -> Allocator.allocation list -> Msts_schedule.Spider_schedule.t
(** Realise a given allocation (emissions as allocated, ASAP execution).
    @raise Invalid_argument if an allocation references an unknown slave. *)
