(** Greedy one-port allocation on single-task virtual nodes (paper §6).

    After expansion the master's port is the only shared resource, and any
    feasible set of virtual nodes can be emitted in non-increasing order of
    remaining work [W]: with nodes so ordered, the set fits a deadline
    [T_lim] iff every prefix satisfies [Σ_{k≤j} c_k + W_j ≤ T_lim].

    The algorithm considers candidate nodes in ascending [(comm, work)]
    order and inserts each one whenever the accepted set stays feasible,
    stopping once [budget] tasks are placed.  This is the Beaumont et al.
    fork-graph algorithm recalled in §6, re-implemented from that
    description and cross-validated against brute force in the tests. *)

type allocation = {
  node : Expansion.vnode;
  emission : int;  (** start of the transfer on the master's port *)
  position : int;  (** 0-based position in emission order *)
}

val allocate :
  Expansion.vnode list -> deadline:int -> budget:int -> allocation list
(** Accepted nodes in emission order (non-increasing [work], transfers
    back-to-back from time 0).  Candidates are re-sorted internally, so any
    order is accepted.  @raise Invalid_argument on negative deadline or
    budget. *)

val max_tasks : Msts_platform.Fork.t -> deadline:int -> budget:int -> int
(** Expand the fork ([budget] ranks per slave) and count the accepted
    nodes. *)

val tasks_per_slave : allocation list -> (int * int) list
(** [(slave, count)] pairs, slaves in increasing index order. *)

val is_feasible_set : Expansion.vnode list -> deadline:int -> bool
(** Check the prefix condition for a full set at once (used by tests and by
    the brute-force oracle). *)
