type allocation = {
  node : Expansion.vnode;
  emission : int;
  position : int;
}

(* Accepted nodes kept sorted by non-increasing [work]; ties keep insertion
   order.  [prefix] is the sum of comm times strictly before each node. *)
let emission_schedule accepted =
  let rec loop prefix position = function
    | [] -> []
    | (node : Expansion.vnode) :: rest ->
        { node; emission = prefix; position }
        :: loop (prefix + node.comm) (position + 1) rest
  in
  loop 0 0 accepted

(* Feasibility of inserting [candidate]: it lands after every node with
   strictly greater or equal work; its own transfer must end early enough,
   and every node pushed later by its comm time must still fit. *)
let try_insert accepted ~deadline (candidate : Expansion.vnode) =
  let rec scan prefix before = function
    | (node : Expansion.vnode) :: rest when node.work >= candidate.work ->
        scan (prefix + node.comm) (node :: before) rest
    | after ->
        let own_ok = prefix + candidate.comm + candidate.work <= deadline in
        let rec suffix_ok prefix = function
          | [] -> true
          | (node : Expansion.vnode) :: rest ->
              prefix + node.comm + node.work <= deadline
              && suffix_ok (prefix + node.comm) rest
        in
        if own_ok && suffix_ok (prefix + candidate.comm) after then
          Some (List.rev_append before (candidate :: after))
        else None
  in
  scan 0 [] accepted

let allocate candidates ~deadline ~budget =
  if deadline < 0 then invalid_arg "Allocator.allocate: negative deadline";
  if budget < 0 then invalid_arg "Allocator.allocate: negative budget";
  Msts_obs.Obs.span "fork.allocate" ~args:[ ("deadline", string_of_int deadline) ]
  @@ fun () ->
  let rec loop accepted count = function
    | [] -> accepted
    | _ when count >= budget -> accepted
    | candidate :: rest -> (
        Msts_obs.Obs.count "fork.insert_probes";
        match try_insert accepted ~deadline candidate with
        | Some accepted ->
            Msts_obs.Obs.count "fork.nodes_accepted";
            loop accepted (count + 1) rest
        | None -> loop accepted count rest)
  in
  Msts_obs.Obs.count ~n:(List.length candidates) "fork.nodes_considered";
  let accepted = loop [] 0 (Expansion.allocation_order candidates) in
  emission_schedule accepted

let max_tasks fork ~deadline ~budget =
  let nodes = Expansion.expand fork ~count:budget in
  List.length (allocate nodes ~deadline ~budget)

let tasks_per_slave allocations =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun { node; _ } ->
      let current = Option.value ~default:0 (Hashtbl.find_opt tbl node.Expansion.slave) in
      Hashtbl.replace tbl node.Expansion.slave (current + 1))
    allocations;
  List.sort compare (Hashtbl.fold (fun slave count acc -> (slave, count) :: acc) tbl [])

let is_feasible_set nodes ~deadline =
  let sorted =
    List.sort
      (fun (a : Expansion.vnode) b -> Int.compare b.work a.work)
      nodes
  in
  let rec check prefix = function
    | [] -> true
    | (node : Expansion.vnode) :: rest ->
        prefix + node.comm + node.work <= deadline
        && check (prefix + node.comm) rest
  in
  check 0 sorted
