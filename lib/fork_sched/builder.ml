module Fork = Msts_platform.Fork
module Spider = Msts_platform.Spider
module Spider_schedule = Msts_schedule.Spider_schedule

let realise fork allocations =
  let spider = Spider.of_fork fork in
  let slave_free = Array.make (Fork.slave_count fork + 1) 0 in
  let entry_of { Allocator.node; emission; _ } =
    let slave = node.Expansion.slave in
    if slave < 1 || slave > Fork.slave_count fork then
      invalid_arg "Builder.realise: allocation for unknown slave";
    let arrival = emission + Fork.latency fork slave in
    let start = max arrival slave_free.(slave) in
    slave_free.(slave) <- start + Fork.work fork slave;
    {
      Spider_schedule.address = { Spider.leg = slave; depth = 1 };
      start;
      comms = [| emission |];
    }
  in
  (* Emission order = allocation order, so per-slave arrivals are sorted and
     the ASAP fold above is well-defined. *)
  let ordered =
    List.sort
      (fun a b -> Int.compare a.Allocator.position b.Allocator.position)
      allocations
  in
  Spider_schedule.make spider (Array.of_list (List.map entry_of ordered))

let schedule fork ~deadline ~budget =
  let nodes = Expansion.expand fork ~count:budget in
  realise fork (Allocator.allocate nodes ~deadline ~budget)
