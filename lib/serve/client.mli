(** Blocking JSONL client for a running [msts serve] daemon — the engine
    behind [msts call], the cram tests and the serve benches. *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's Unix-domain socket. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** The raw descriptor (the pipelined bench drives it with [select]). *)

val send_line : t -> string -> unit
(** Write one newline-terminated frame and flush. *)

val recv_line : t -> string option
(** Read one frame; [None] once the daemon closed the connection. *)

val rpc : t -> Msts.Api.request -> (Msts.Api.response, Msts.Api.error) result
(** One request, one response: encode, send, receive, decode.  An
    unreadable or closed stream surfaces as a [`bad_request]-class
    {!Msts.Api.error}. *)
