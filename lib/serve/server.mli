(** The [msts serve] daemon: a Unix-domain-socket front-end to
    {!Engine}.

    Single-threaded by design — one [select] loop multiplexes the listen
    socket and every client over non-blocking descriptors, and the solves
    themselves fan out on the engine's domain pool.  Framing is JSONL:
    one compact JSON request per line in, one response line out, in
    request order per connection (see docs/API.md).

    Shutdown protocol, both for SIGTERM/SIGINT and for a [shutdown]
    request: perform a final read sweep over every connection (frames
    already written by clients are in-flight work and are {e never}
    dropped), stop admitting, drain the queue to completion, flush every
    response out, then close, unlink the socket and exit 0.  A malformed
    frame never closes a connection — it is answered with a structured
    [`bad_request] error.

    Telemetry: with [telemetry = Some path] every [Obs] event streams to
    [path] as JSONL ({!Msts.Obs.Streaming}); a last-N {!Msts.Obs.Ring}
    rides along regardless and its tail is dumped to stderr if the loop
    dies on an uncaught exception (exit 125).  The engine's metrics sink
    ({!Engine.metrics_sink}) always joins the tee, feeding the live
    Prometheus exposition: the [metrics] control op, and — with
    [metrics_out = Some file] — a periodic atomic rewrite of [file]
    (write to [file.tmp], rename; a scraper never reads a torn document)
    at boot, every [metrics_interval] seconds, and once more after the
    final drain. *)

type config = {
  socket_path : string;
  engine : Engine.config;
  telemetry : string option;  (** stream Obs events to this JSONL file *)
  ring_capacity : int;  (** post-mortem ring size *)
  quiet : bool;  (** suppress the readiness / shutdown notices on stdout *)
  metrics_out : string option;
      (** atomically rewrite this file with the Prometheus exposition *)
  metrics_interval : float;  (** seconds between rewrites (must be > 0) *)
}

val default_config : socket_path:string -> config
(** No telemetry, no metrics file, ring of 1024, engine defaults,
    [metrics_interval = 1.0]. *)

val run : config -> int
(** Bind, announce readiness ("listening on ..." on stdout unless
    [quiet]), serve until a shutdown request or SIGTERM/SIGINT, drain,
    and return the process exit code (0 on a clean drain, 2 when the
    socket cannot be bound, 125 on an uncaught exception). *)
