module Api = Msts.Api
module Obs = Msts.Obs
module Json = Msts.Json

type config = {
  jobs : int;
  cache_capacity : int;
  queue_cap : int;
  timeout_us : int;
  max_batch : int;
}

let default_config =
  { jobs = 1; cache_capacity = 256; queue_cap = 1024; timeout_us = 0; max_batch = 32 }

type item = {
  request : Api.request;
  reply : Api.response -> unit;
  enqueued_us : int;
}

type t = {
  cfg : config;
  pool : Msts.Pool.t;
  cache : Msts.Batch.cache;
  queue : item Queue.t;
  online : Msts_online.Service.t;
  mutable stopping : bool;
  mutable served : int;
  mutable rejected : int;
  mutable timeouts : int;
}

let create cfg =
  if cfg.jobs < 1 then
    invalid_arg "Msts_serve.Engine.create: jobs must be >= 1";
  if cfg.cache_capacity < 1 then
    invalid_arg "Msts_serve.Engine.create: cache_capacity must be >= 1";
  if cfg.queue_cap < 1 then
    invalid_arg "Msts_serve.Engine.create: queue_cap must be >= 1";
  if cfg.max_batch < 1 then
    invalid_arg "Msts_serve.Engine.create: max_batch must be >= 1";
  {
    cfg;
    pool = Msts.Pool.create ~jobs:cfg.jobs ();
    cache = Msts.Batch.cache ~capacity:cfg.cache_capacity;
    queue = Queue.create ();
    online = Msts_online.Service.create ();
    stopping = false;
    served = 0;
    rejected = 0;
    timeouts = 0;
  }

let config t = t.cfg
let pending t = Queue.length t.queue
let stopping t = t.stopping
let served t = t.served
let rejected t = t.rejected
let online_sessions t = Msts_online.Service.sessions t.online
let stop t = t.stopping <- true

let stats_json t =
  Json.Obj
    [
      ("version", Json.Int Api.version);
      ("jobs", Json.Int (Msts.Pool.jobs t.pool));
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.Int (Msts.Batch.cache_capacity t.cache));
            ("length", Json.Int (Msts.Batch.cache_length t.cache));
          ] );
      ("queue", Json.Int (Queue.length t.queue));
      ("online_sessions", Json.Int (Msts_online.Service.sessions t.online));
      ("served", Json.Int t.served);
      ("rejected", Json.Int t.rejected);
      ("stopping", Json.Bool t.stopping);
    ]

let solver t problems =
  Msts.Batch.run ~pool:t.pool ~cache:t.cache ~solve:Api.guarded_solve problems

(* Every response funnels through here: the one place that counts. *)
let deliver t item response =
  t.served <- t.served + 1;
  Obs.count "serve.responses";
  (match response.Api.result with
  | Ok _ -> ()
  | Error _ -> Obs.count "serve.errors");
  item.reply response

let answer t item result = deliver t item { Api.id = item.request.Api.id; result }

let refuse t item code message =
  t.rejected <- t.rejected + 1;
  Obs.count "serve.rejected";
  answer t item (Error (Api.error code message))

let submit t ~reply request =
  Obs.count "serve.requests";
  let item = { request; reply; enqueued_us = Obs.now_us () } in
  if Api.is_control request.Api.op then begin
    (match request.Api.op with Api.Shutdown -> t.stopping <- true | _ -> ());
    let result =
      match Api.exec ~solver:(solver t) request.Api.op with
      | Ok Api.Stats_info _ -> Ok (stats_json t)
      | Ok reply -> Ok (Api.json_of_reply reply)
      | Error e -> Error e
    in
    deliver t item { Api.id = request.Api.id; result }
  end
  else if Msts_online.Service.handles request.Api.op then
    (* Online operations are session state transitions: cheap (O(p) per
       arrival), ordered, and answered synchronously — including while
       draining, so a SIGTERM mid-session never drops a delta.  The queue
       and its admission control are for solve work only. *)
    deliver t item
      {
        Api.id = request.Api.id;
        result = Msts_online.Service.exec t.online request.Api.op;
      }
  else if t.stopping then
    refuse t item Api.Shutting_down "server is draining; request not admitted"
  else if Queue.length t.queue >= t.cfg.queue_cap then
    refuse t item Api.Overloaded
      (Printf.sprintf "request queue full (%d queued)" t.cfg.queue_cap)
  else begin
    Obs.count "serve.accepted";
    Queue.add item t.queue
  end

let handle_line t ~reply line =
  match Api.request_of_line line with
  | Ok request ->
      submit t ~reply:(fun r -> reply (Api.response_to_line r)) request
  | Error e ->
      Obs.count "serve.requests";
      t.rejected <- t.rejected + 1;
      Obs.count "serve.rejected";
      Obs.count "serve.responses";
      Obs.count "serve.errors";
      t.served <- t.served + 1;
      reply
        (Api.response_to_line { Api.id = Api.frame_id line; result = Error e })

let dispatch t =
  let batch = min t.cfg.max_batch (Queue.length t.queue) in
  if batch = 0 then 0
  else begin
    Obs.record "serve.batch_size" batch;
    let now = Obs.now_us () in
    let items = Array.init batch (fun _ -> Queue.take t.queue) in
    Array.iter
      (fun item -> Obs.record "serve.queue_wait_us" (now - item.enqueued_us))
      items;
    let live, expired =
      if t.cfg.timeout_us <= 0 then (Array.to_list items, [])
      else
        List.partition
          (fun item -> now - item.enqueued_us <= t.cfg.timeout_us)
          (Array.to_list items)
    in
    List.iter
      (fun item ->
        t.timeouts <- t.timeouts + 1;
        t.rejected <- t.rejected + 1;
        Obs.count "serve.timeouts";
        answer t item
          (Error
             (Api.error Api.Timeout
                (Printf.sprintf "queued %d us, deadline %d us"
                   (now - item.enqueued_us) t.cfg.timeout_us))))
      expired;
    List.iter
      (fun item ->
        answer t item
          (match
             Api.exec ~cache_capacity:t.cfg.cache_capacity ~solver:(solver t)
               item.request.Api.op
           with
          | Ok reply -> Ok (Api.json_of_reply reply)
          | Error e -> Error e))
      live;
    batch
  end

let drain t =
  let total = ref 0 in
  while Queue.length t.queue > 0 do
    total := !total + dispatch t
  done;
  !total

let shutdown t = Msts.Pool.shutdown t.pool
