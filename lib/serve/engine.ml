module Api = Msts.Api
module Obs = Msts.Obs
module Json = Msts.Json

type config = {
  jobs : int;
  cache_capacity : int;
  queue_cap : int;
  timeout_us : int;
  max_batch : int;
  slow_log : int;
}

let default_config =
  {
    jobs = 1;
    cache_capacity = 256;
    queue_cap = 1024;
    timeout_us = 0;
    max_batch = 32;
    slow_log = 16;
  }

type item = {
  request : Api.request;
  reply : Api.response -> unit;
  enqueued_us : int;
}

type slow_entry = {
  trace_label : string;
  op : string;
  queue_wait_us : int;
  solve_us : int;
  encode_us : int;
  total_us : int;
}

type t = {
  cfg : config;
  pool : Msts.Pool.t;
  cache : Msts.Batch.cache;
  queue : item Queue.t;
  online : Msts_online.Service.t;
  mutable stopping : bool;
  mutable served : int;
  mutable rejected : int;
  mutable timeouts : int;
  (* Request-latency breakdown, maintained engine-side (no Obs sink
     required) so Stats and the metrics exposition always carry live
     p50/p99s.  [metrics] is the engine's own aggregating sink; the
     Server tees it into whatever sink stack it installs, giving the
     exposition its counter/histogram families. *)
  metrics : Obs.Memory.t;
  req_queue_wait : Obs.Histogram.t;
  req_solve : Obs.Histogram.t;
  req_encode : Obs.Histogram.t;
  mutable slow : slow_entry list; (* sorted by total_us desc, <= slow_log *)
  mutable assigned : int; (* engine-assigned trace labels for traceless requests *)
}

let create cfg =
  if cfg.jobs < 1 then
    invalid_arg "Msts_serve.Engine.create: jobs must be >= 1";
  if cfg.cache_capacity < 1 then
    invalid_arg "Msts_serve.Engine.create: cache_capacity must be >= 1";
  if cfg.queue_cap < 1 then
    invalid_arg "Msts_serve.Engine.create: queue_cap must be >= 1";
  if cfg.max_batch < 1 then
    invalid_arg "Msts_serve.Engine.create: max_batch must be >= 1";
  if cfg.slow_log < 0 then
    invalid_arg "Msts_serve.Engine.create: slow_log must be >= 0";
  {
    cfg;
    pool = Msts.Pool.create ~jobs:cfg.jobs ();
    cache = Msts.Batch.cache ~capacity:cfg.cache_capacity;
    queue = Queue.create ();
    online = Msts_online.Service.create ();
    stopping = false;
    served = 0;
    rejected = 0;
    timeouts = 0;
    metrics = Obs.Memory.create ~max_events:0 ();
    req_queue_wait = Obs.Histogram.create ();
    req_solve = Obs.Histogram.create ();
    req_encode = Obs.Histogram.create ();
    slow = [];
    assigned = 0;
  }

let config t = t.cfg
let pending t = Queue.length t.queue
let stopping t = t.stopping
let served t = t.served
let rejected t = t.rejected
let online_sessions t = Msts_online.Service.sessions t.online
let stop t = t.stopping <- true
let metrics_sink t = Obs.Memory.sink t.metrics
let slow_requests t = t.slow

let note_slow t e =
  if t.cfg.slow_log > 0 then begin
    let rec insert = function
      | [] -> [ e ]
      | x :: rest when e.total_us > x.total_us -> e :: x :: rest
      | x :: rest -> x :: insert rest
    in
    let merged = insert t.slow in
    t.slow <-
      (if List.length merged > t.cfg.slow_log then
         List.filteri (fun i _ -> i < t.cfg.slow_log) merged
       else merged)
  end

let slow_entry_json e =
  Json.Obj
    [
      ("trace", Json.String e.trace_label);
      ("op", Json.String e.op);
      ("queue_wait_us", Json.Int e.queue_wait_us);
      ("solve_us", Json.Int e.solve_us);
      ("encode_us", Json.Int e.encode_us);
      ("total_us", Json.Int e.total_us);
    ]

let stats_json t =
  Json.Obj
    [
      ("version", Json.Int Api.version);
      ("jobs", Json.Int (Msts.Pool.jobs t.pool));
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.Int (Msts.Batch.cache_capacity t.cache));
            ("length", Json.Int (Msts.Batch.cache_length t.cache));
          ] );
      ("queue", Json.Int (Queue.length t.queue));
      ("online_sessions", Json.Int (Msts_online.Service.sessions t.online));
      ("served", Json.Int t.served);
      ("rejected", Json.Int t.rejected);
      ("stopping", Json.Bool t.stopping);
      ( "request",
        Json.Obj
          [
            ("queue_wait_us", Obs.Histogram.to_json t.req_queue_wait);
            ("solve_us", Obs.Histogram.to_json t.req_solve);
            ("encode_us", Obs.Histogram.to_json t.req_encode);
          ] );
      ("slow_requests", Json.List (List.map slow_entry_json t.slow));
    ]

let exposition t =
  (* The teed Memory sink carries every counter/histogram emitted on the
     server domain (serve.*, online.*, and whatever the solves emit).
     The request.* breakdown is rendered from the engine-side histograms
     instead — they are exact even when no sink is installed — so the
     Memory copies of those names are excluded to keep families unique. *)
  let request_name n =
    String.length n >= 8 && String.sub n 0 8 = "request."
  in
  let histograms =
    List.filter (fun (n, _) -> not (request_name n)) (Obs.Memory.histograms t.metrics)
    @ [
        ("request.queue_wait_us", t.req_queue_wait);
        ("request.solve_us", t.req_solve);
        ("request.encode_us", t.req_encode);
      ]
  in
  let gauges =
    [
      ("serve.queue_depth", Queue.length t.queue);
      ("serve.online_sessions", Msts_online.Service.sessions t.online);
      ("serve.cache_entries", Msts.Batch.cache_length t.cache);
      ("serve.cache_capacity", Msts.Batch.cache_capacity t.cache);
      ("serve.draining", if t.stopping then 1 else 0);
    ]
  in
  Obs.Prometheus.render
    ~counters:(Obs.Memory.counters t.metrics)
    ~gauges ~histograms ()

let solver t problems =
  Msts.Batch.run ~pool:t.pool ~cache:t.cache ~solve:Api.guarded_solve problems

(* Every response funnels through here: the one place that counts. *)
let deliver t item response =
  t.served <- t.served + 1;
  Obs.count "serve.responses";
  (match response.Api.result with
  | Ok _ -> ()
  | Error _ -> Obs.count "serve.errors");
  item.reply response

(* Responses echo the client's trace context (or nothing): the engine
   never injects its internally assigned labels into the wire, so
   trace-less clients get byte-identical frames. *)
let answer t item result =
  deliver t item
    { Api.id = item.request.Api.id; trace = item.request.Api.trace; result }

(* The telemetry label for a request: the client's trace context when
   supplied, an engine-assigned "r<n>" otherwise. *)
let trace_label t (request : Api.request) =
  match request.Api.trace with
  | Some s -> s
  | None ->
      t.assigned <- t.assigned + 1;
      Printf.sprintf "r%d" t.assigned

let refuse t item code message =
  t.rejected <- t.rejected + 1;
  Obs.count "serve.rejected";
  answer t item (Error (Api.error code message))

let submit t ~reply request =
  Obs.count "serve.requests";
  let item = { request; reply; enqueued_us = Obs.now_us () } in
  if Api.is_control request.Api.op then begin
    (match request.Api.op with Api.Shutdown -> t.stopping <- true | _ -> ());
    let result =
      match Api.exec ~solver:(solver t) request.Api.op with
      | Ok (Api.Stats_info _) -> Ok (stats_json t)
      | Ok (Api.Metrics_text _) ->
          Ok (Api.json_of_reply (Api.Metrics_text (exposition t)))
      | Ok reply -> Ok (Api.json_of_reply reply)
      | Error e -> Error e
    in
    deliver t item { Api.id = request.Api.id; trace = request.Api.trace; result }
  end
  else if Msts_online.Service.handles request.Api.op then
    (* Online operations are session state transitions: cheap (O(p) per
       arrival), ordered, and answered synchronously — including while
       draining, so a SIGTERM mid-session never drops a delta.  The queue
       and its admission control are for solve work only. *)
    deliver t item
      {
        Api.id = request.Api.id;
        trace = request.Api.trace;
        result = Msts_online.Service.exec t.online request.Api.op;
      }
  else if t.stopping then
    refuse t item Api.Shutting_down "server is draining; request not admitted"
  else if Queue.length t.queue >= t.cfg.queue_cap then
    refuse t item Api.Overloaded
      (Printf.sprintf "request queue full (%d queued)" t.cfg.queue_cap)
  else begin
    Obs.count "serve.accepted";
    Queue.add item t.queue
  end

let handle_line t ~reply line =
  match Api.request_of_line line with
  | Ok request ->
      submit t ~reply:(fun r -> reply (Api.response_to_line r)) request
  | Error e ->
      Obs.count "serve.requests";
      t.rejected <- t.rejected + 1;
      Obs.count "serve.rejected";
      Obs.count "serve.responses";
      Obs.count "serve.errors";
      t.served <- t.served + 1;
      reply
        (Api.response_to_line
           {
             Api.id = Api.frame_id line;
             trace = Api.frame_trace line;
             result = Error e;
           })

let dispatch t =
  let batch = min t.cfg.max_batch (Queue.length t.queue) in
  if batch = 0 then 0
  else begin
    Obs.record "serve.batch_size" batch;
    let now = Obs.now_us () in
    let items = Array.init batch (fun _ -> Queue.take t.queue) in
    Array.iter
      (fun item -> Obs.record "serve.queue_wait_us" (now - item.enqueued_us))
      items;
    let live, expired =
      if t.cfg.timeout_us <= 0 then (Array.to_list items, [])
      else
        List.partition
          (fun item -> now - item.enqueued_us <= t.cfg.timeout_us)
          (Array.to_list items)
    in
    List.iter
      (fun item ->
        t.timeouts <- t.timeouts + 1;
        t.rejected <- t.rejected + 1;
        Obs.count "serve.timeouts";
        answer t item
          (Error
             (Api.error Api.Timeout
                (Printf.sprintf "queued %d us, deadline %d us"
                   (now - item.enqueued_us) t.cfg.timeout_us))))
      expired;
    List.iter
      (fun item ->
        (* Each live request runs under its own fresh scope: every event
           the solve emits (pool.*, chain.*, ...) is attributed to this
           request by any scope-aware sink, and the serve.request span
           carries the op and trace label as args. *)
        let label = trace_label t item.request in
        let op_name = Api.op_name item.request.Api.op in
        let queue_wait_us = now - item.enqueued_us in
        Obs.Scope.with_scope (Obs.Scope.fresh ()) @@ fun () ->
        Obs.span "serve.request"
          ~args:[ ("op", op_name); ("trace", label) ]
        @@ fun () ->
        let solve_from = Obs.now_us () in
        let result =
          match
            Api.exec ~cache_capacity:t.cfg.cache_capacity ~solver:(solver t)
              item.request.Api.op
          with
          | Ok reply -> Ok (Api.json_of_reply reply)
          | Error e -> Error e
        in
        let solve_done = Obs.now_us () in
        answer t item result;
        let delivered = Obs.now_us () in
        let solve_us = solve_done - solve_from in
        let encode_us = delivered - solve_done in
        Obs.Histogram.add t.req_queue_wait queue_wait_us;
        Obs.Histogram.add t.req_solve solve_us;
        Obs.Histogram.add t.req_encode encode_us;
        Obs.record "request.queue_wait_us" queue_wait_us;
        Obs.record "request.solve_us" solve_us;
        Obs.record "request.encode_us" encode_us;
        note_slow t
          {
            trace_label = label;
            op = op_name;
            queue_wait_us;
            solve_us;
            encode_us;
            total_us = queue_wait_us + solve_us + encode_us;
          })
      live;
    batch
  end

let drain t =
  let total = ref 0 in
  while Queue.length t.queue > 0 do
    total := !total + dispatch t
  done;
  !total

let shutdown t = Msts.Pool.shutdown t.pool
