module Api = Msts.Api
module Obs = Msts.Obs
module Json = Msts.Json

type config = {
  jobs : int;
  cache_capacity : int;
  queue_cap : int;
  timeout_us : int;
  max_batch : int;
  slow_log : int;
  max_queue_per_conn : int;
  quantum : int;
  max_inflight : int;
}

let default_config =
  {
    jobs = 1;
    cache_capacity = 256;
    queue_cap = 1024;
    timeout_us = 0;
    max_batch = 32;
    slow_log = 16;
    max_queue_per_conn = 256;
    quantum = 1;
    max_inflight = 0;
  }

(* One connection's scheduling state: a FIFO of work units and the
   deficit-round-robin bookkeeping.  [cid 0] is the engine's default
   connection, used by callers that never open one. *)
type conn = {
  cid : int;
  q : unit_task Queue.t;
  queue_wait : Obs.Histogram.t; (* per-request admission-to-launch wait *)
  mutable deficit : int;
  mutable active : bool; (* currently in the round-robin ring *)
  mutable open_ : bool;
  mutable queued_reqs : int; (* requests with units still queued *)
  mutable c_inflight : int; (* units running on the pool *)
  mutable admitted : int;
  mutable delivered : int;
}

and item = {
  request : Api.request;
  reply : Api.response -> unit;
  enqueued_us : int;
  iconn : conn;
}

(* The schedulable grain.  A singleton request is one [Whole] unit; a
   [batch] request is sharded at admission into one [Shard] per distinct
   uncached problem (or a single [Finish] when everything was cached),
   so one big batch interleaves with other connections' units. *)
and unit_task =
  | Whole of item
  | Shard of batch_job * int
  | Finish of batch_job

and batch_job = {
  b_item : item;
  b_problems : Api.problem array;
  plan : Msts.Batch.plan;
  solved : Msts.Batch.outcome array;
  wait_us : int array;
  busy_us : int array;
  b_scope : int;
  b_label : string;
  mutable remaining : int; (* shards not yet completed *)
  mutable launched : int;
  mutable cancelled : bool; (* timed out before the first launch *)
  mutable b_queued_units : int;
  mutable first_launch_us : int;
  mutable first_picked_us : int;
  mutable last_done_us : int;
}

(* What a worker hands back through the ticket, timestamped on the
   worker so [request.solve_us] survives the move off the I/O domain. *)
type whole_done = {
  w_result : (Json.t, Api.error) result;
  w_stats : Msts.Batch.stats option;
  w_picked_us : int;
  w_done_us : int;
}

type shard_done = {
  s_outcome : Msts.Batch.outcome;
  s_picked_us : int;
  s_done_us : int;
}

type flight =
  | F_whole of whole_flight
  | F_shard of shard_flight

and whole_flight = {
  w_item : item;
  w_scope : int;
  w_label : string;
  w_op : string;
  w_launched_us : int;
  w_ticket : whole_done Msts.Pool.ticket;
}

and shard_flight = {
  s_job : batch_job;
  s_slot : int;
  s_launched_us : int;
  s_ticket : shard_done Msts.Pool.ticket;
}

type slow_entry = {
  trace_label : string;
  op : string;
  queue_wait_us : int;
  solve_us : int;
  encode_us : int;
  total_us : int;
}

type t = {
  cfg : config;
  pool : Msts.Pool.t;
  cache : Msts.Batch.cache;
  conns : (int, conn) Hashtbl.t;
  ring : int Queue.t; (* active cids, deficit-round-robin order *)
  default_conn : conn;
  mutable next_cid : int;
  mutable queued_requests : int;
  mutable queued_units : int;
  mutable inflight : flight list; (* launch order (oldest first) *)
  mutable inflight_count : int;
  online : Msts_online.Service.t;
  mutable stopping : bool;
  mutable served : int;
  mutable rejected : int;
  mutable timeouts : int;
  (* Request-latency breakdown, maintained engine-side (no Obs sink
     required) so Stats and the metrics exposition always carry live
     p50/p99s.  [metrics] is the engine's own aggregating sink; the
     Server tees it into whatever sink stack it installs, giving the
     exposition its counter/histogram families. *)
  metrics : Obs.Memory.t;
  req_queue_wait : Obs.Histogram.t;
  req_solve : Obs.Histogram.t;
  req_encode : Obs.Histogram.t;
  mutable slow : slow_entry list; (* sorted by total_us desc, <= slow_log *)
  mutable assigned : int; (* engine-assigned trace labels for traceless requests *)
}

let make_conn cid =
  {
    cid;
    q = Queue.create ();
    queue_wait = Obs.Histogram.create ();
    deficit = 0;
    active = false;
    open_ = true;
    queued_reqs = 0;
    c_inflight = 0;
    admitted = 0;
    delivered = 0;
  }

let create cfg =
  if cfg.jobs < 1 then
    invalid_arg "Msts_serve.Engine.create: jobs must be >= 1";
  if cfg.cache_capacity < 1 then
    invalid_arg "Msts_serve.Engine.create: cache_capacity must be >= 1";
  if cfg.queue_cap < 1 then
    invalid_arg "Msts_serve.Engine.create: queue_cap must be >= 1";
  if cfg.max_batch < 1 then
    invalid_arg "Msts_serve.Engine.create: max_batch must be >= 1";
  if cfg.slow_log < 0 then
    invalid_arg "Msts_serve.Engine.create: slow_log must be >= 0";
  if cfg.max_queue_per_conn < 1 then
    invalid_arg "Msts_serve.Engine.create: max_queue_per_conn must be >= 1";
  if cfg.quantum < 1 then
    invalid_arg "Msts_serve.Engine.create: quantum must be >= 1";
  if cfg.max_inflight < 0 then
    invalid_arg "Msts_serve.Engine.create: max_inflight must be >= 0";
  let pool = Msts.Pool.create ~jobs:cfg.jobs () in
  (* Materialise the completion pipe up front so no completion can
     race the server's first look at {!wakeup_fd}. *)
  ignore (Msts.Pool.completion_fd pool);
  let default_conn = make_conn 0 in
  let conns = Hashtbl.create 16 in
  Hashtbl.replace conns 0 default_conn;
  {
    cfg;
    pool;
    cache = Msts.Batch.cache ~capacity:cfg.cache_capacity;
    conns;
    ring = Queue.create ();
    default_conn;
    next_cid = 0;
    queued_requests = 0;
    queued_units = 0;
    inflight = [];
    inflight_count = 0;
    online = Msts_online.Service.create ();
    stopping = false;
    served = 0;
    rejected = 0;
    timeouts = 0;
    metrics = Obs.Memory.create ~max_events:0 ();
    req_queue_wait = Obs.Histogram.create ();
    req_solve = Obs.Histogram.create ();
    req_encode = Obs.Histogram.create ();
    slow = [];
    assigned = 0;
  }

let config t = t.cfg
let pending t = t.queued_requests
let inflight t = t.inflight_count
let stopping t = t.stopping
let served t = t.served
let rejected t = t.rejected
let online_sessions t = Msts_online.Service.sessions t.online
let stop t = t.stopping <- true
let metrics_sink t = Obs.Memory.sink t.metrics
let slow_requests t = t.slow
let wakeup_fd t = Msts.Pool.completion_fd t.pool

let max_inflight t =
  if t.cfg.max_inflight > 0 then t.cfg.max_inflight
  else 2 * Msts.Pool.jobs t.pool

let runnable t = t.queued_units > 0 && t.inflight_count < max_inflight t

(* ---------- connection lifecycle ---------- *)

let open_conn t =
  t.next_cid <- t.next_cid + 1;
  let c = make_conn t.next_cid in
  Hashtbl.replace t.conns c.cid c;
  c

(* A closed connection's queued units are still processed (the replies
   land in a dead letter box); the record is forgotten once drained. *)
let maybe_forget t c =
  if
    (not c.open_) && c.cid <> 0
    && Queue.is_empty c.q
    && c.c_inflight = 0
  then Hashtbl.remove t.conns c.cid

let close_conn t c =
  c.open_ <- false;
  maybe_forget t c

let conn_id c = c.cid

(* ---------- bookkeeping helpers ---------- *)

let note_slow t e =
  if t.cfg.slow_log > 0 then begin
    let rec insert = function
      | [] -> [ e ]
      | x :: rest when e.total_us > x.total_us -> e :: x :: rest
      | x :: rest -> x :: insert rest
    in
    let merged = insert t.slow in
    t.slow <-
      (if List.length merged > t.cfg.slow_log then
         List.filteri (fun i _ -> i < t.cfg.slow_log) merged
       else merged)
  end

let slow_entry_json e =
  Json.Obj
    [
      ("trace", Json.String e.trace_label);
      ("op", Json.String e.op);
      ("queue_wait_us", Json.Int e.queue_wait_us);
      ("solve_us", Json.Int e.solve_us);
      ("encode_us", Json.Int e.encode_us);
      ("total_us", Json.Int e.total_us);
    ]

let conn_json c =
  Json.Obj
    [
      ("id", Json.Int c.cid);
      ("open", Json.Bool c.open_);
      ("queued_units", Json.Int (Queue.length c.q));
      ("queued_requests", Json.Int c.queued_reqs);
      ("deficit", Json.Int c.deficit);
      ("inflight", Json.Int c.c_inflight);
      ("admitted", Json.Int c.admitted);
      ("delivered", Json.Int c.delivered);
      ("queue_wait_us", Obs.Histogram.to_json c.queue_wait);
    ]

let connections_json t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.conns []
  |> List.sort (fun a b -> compare a.cid b.cid)
  |> List.map conn_json

let stats_json t =
  Json.Obj
    [
      ("version", Json.Int Api.version);
      ("jobs", Json.Int (Msts.Pool.jobs t.pool));
      ( "cache",
        Json.Obj
          [
            ("capacity", Json.Int (Msts.Batch.cache_capacity t.cache));
            ("length", Json.Int (Msts.Batch.cache_length t.cache));
          ] );
      ("queue", Json.Int t.queued_requests);
      ("inflight", Json.Int t.inflight_count);
      ("online_sessions", Json.Int (Msts_online.Service.sessions t.online));
      ("served", Json.Int t.served);
      ("rejected", Json.Int t.rejected);
      ("stopping", Json.Bool t.stopping);
      ( "request",
        Json.Obj
          [
            ("queue_wait_us", Obs.Histogram.to_json t.req_queue_wait);
            ("solve_us", Obs.Histogram.to_json t.req_solve);
            ("encode_us", Obs.Histogram.to_json t.req_encode);
          ] );
      ("connections", Json.List (connections_json t));
      ("slow_requests", Json.List (List.map slow_entry_json t.slow));
    ]

let exposition t =
  (* The teed Memory sink carries every counter/histogram emitted on the
     server domain (serve.*, online.*, and whatever the solves emit).
     The request.* breakdown is rendered from the engine-side histograms
     instead — they are exact even when no sink is installed — so the
     Memory copies of those names are excluded to keep families unique. *)
  let request_name n =
    String.length n >= 8 && String.sub n 0 8 = "request."
  in
  let histograms =
    List.filter (fun (n, _) -> not (request_name n)) (Obs.Memory.histograms t.metrics)
    @ [
        ("request.queue_wait_us", t.req_queue_wait);
        ("request.solve_us", t.req_solve);
        ("request.encode_us", t.req_encode);
      ]
  in
  let gauges =
    [
      ("serve.queue_depth", t.queued_requests);
      ("serve.inflight", t.inflight_count);
      ("serve.online_sessions", Msts_online.Service.sessions t.online);
      ("serve.cache_entries", Msts.Batch.cache_length t.cache);
      ("serve.cache_capacity", Msts.Batch.cache_capacity t.cache);
      ("serve.draining", if t.stopping then 1 else 0);
    ]
  in
  Obs.Prometheus.render
    ~counters:(Obs.Memory.counters t.metrics)
    ~gauges ~histograms ()

(* The synchronous solver: used by control-op exec (which never solves)
   and, crucially, by [Whole] thunks *on the worker domain* — an inline
   jobs=1 run over the shared cache, so a worker never re-enters the
   pool it is part of. *)
let inline_solver t problems =
  Msts.Batch.run ~jobs:1 ~cache:t.cache ~solve:Api.guarded_solve problems

(* Every response funnels through here: the one place that counts. *)
let deliver t item response =
  t.served <- t.served + 1;
  item.iconn.delivered <- item.iconn.delivered + 1;
  Obs.count "serve.responses";
  (match response.Api.result with
  | Ok _ -> ()
  | Error _ -> Obs.count "serve.errors");
  item.reply response

(* Responses echo the client's trace context (or nothing): the engine
   never injects its internally assigned labels into the wire, so
   trace-less clients get byte-identical frames. *)
let answer t item result =
  deliver t item
    { Api.id = item.request.Api.id; trace = item.request.Api.trace; result }

(* The telemetry label for a request: the client's trace context when
   supplied, an engine-assigned "r<n>" otherwise. *)
let trace_label t (request : Api.request) =
  match request.Api.trace with
  | Some s -> s
  | None ->
      t.assigned <- t.assigned + 1;
      Printf.sprintf "r%d" t.assigned

let refuse t item code message =
  t.rejected <- t.rejected + 1;
  Obs.count "serve.rejected";
  answer t item (Error (Api.error code message))

let record_request t ~label ~op ~queue_wait_us ~solve_us ~encode_us =
  Obs.Histogram.add t.req_queue_wait queue_wait_us;
  Obs.Histogram.add t.req_solve solve_us;
  Obs.Histogram.add t.req_encode encode_us;
  Obs.record "request.queue_wait_us" queue_wait_us;
  Obs.record "request.solve_us" solve_us;
  Obs.record "request.encode_us" encode_us;
  note_slow t
    {
      trace_label = label;
      op;
      queue_wait_us;
      solve_us;
      encode_us;
      total_us = queue_wait_us + solve_us + encode_us;
    }

(* Counters a worker emitted into its null sink, replayed on the engine
   domain from the stats the ticket carried back.  Only needed when the
   thunk really ran on a worker; on a jobs=1 pool it ran inline right
   here and already hit the live sink. *)
let reemit_pool_stats t = function
  | None -> ()
  | Some (s : Msts.Batch.stats) ->
      if Msts.Pool.jobs t.pool > 1 then begin
        Obs.count ~n:s.requests "pool.requests";
        Obs.count ~n:s.cache_hits "pool.cache_hits";
        Obs.count ~n:s.cache_misses "pool.cache_misses";
        Obs.count ~n:s.cache_misses "pool.solves";
        Obs.count ~n:s.queue_wait_us "pool.queue_wait_us";
        Obs.count ~n:s.busy_us "pool.busy_us";
        if s.cache_misses > 0 then begin
          Obs.record "pool.queue_wait_us" s.queue_wait_us;
          Obs.record "pool.busy_us" s.busy_us
        end
      end

(* ---------- admission ---------- *)

let enqueue_unit t c u =
  Queue.add u c.q;
  t.queued_units <- t.queued_units + 1;
  if not c.active then begin
    c.active <- true;
    Queue.add c.cid t.ring
  end

let admit t c item =
  Obs.count "serve.accepted";
  c.admitted <- c.admitted + 1;
  (match item.request.Api.op with
  | Api.Batch problems ->
      (* Shard at admission: the coordinator pass (dedupe + cache probes,
         submission order) runs here on the I/O domain; the slots become
         independent units that interleave with other connections. *)
      let plan = Msts.Batch.shard ~cache:t.cache problems in
      let k = Msts.Batch.shard_count plan in
      let job =
        {
          b_item = item;
          b_problems = problems;
          plan;
          solved = Array.make k (Error "pending");
          wait_us = Array.make k 0;
          busy_us = Array.make k 0;
          b_scope = Obs.Scope.fresh ();
          b_label = trace_label t item.request;
          remaining = k;
          launched = 0;
          cancelled = false;
          b_queued_units = (if k = 0 then 1 else k);
          first_launch_us = item.enqueued_us;
          first_picked_us = max_int;
          last_done_us = 0;
        }
      in
      if k = 0 then enqueue_unit t c (Finish job)
      else
        for slot = 0 to k - 1 do
          enqueue_unit t c (Shard (job, slot))
        done
  | _ -> enqueue_unit t c (Whole item));
  t.queued_requests <- t.queued_requests + 1;
  c.queued_reqs <- c.queued_reqs + 1

let submit t ?conn ~reply request =
  Obs.count "serve.requests";
  let c = match conn with Some c -> c | None -> t.default_conn in
  let item = { request; reply; enqueued_us = Obs.now_us (); iconn = c } in
  if Api.is_control request.Api.op then begin
    (match request.Api.op with Api.Shutdown -> t.stopping <- true | _ -> ());
    let result =
      match Api.exec ~solver:(inline_solver t) request.Api.op with
      | Ok (Api.Stats_info _) -> Ok (stats_json t)
      | Ok (Api.Metrics_text _) ->
          Ok (Api.json_of_reply (Api.Metrics_text (exposition t)))
      | Ok reply -> Ok (Api.json_of_reply reply)
      | Error e -> Error e
    in
    deliver t item { Api.id = request.Api.id; trace = request.Api.trace; result }
  end
  else if Msts_online.Service.handles request.Api.op then
    (* Online operations are session state transitions: cheap (O(p) per
       arrival), ordered, and answered synchronously — including while
       draining, so a SIGTERM mid-session never drops a delta.  The queue
       and its admission control are for solve work only. *)
    deliver t item
      {
        Api.id = request.Api.id;
        trace = request.Api.trace;
        result = Msts_online.Service.exec t.online request.Api.op;
      }
  else if t.stopping then
    refuse t item Api.Shutting_down "server is draining; request not admitted"
  else if t.queued_requests >= t.cfg.queue_cap then
    refuse t item Api.Overloaded
      (Printf.sprintf "request queue full (%d queued)" t.cfg.queue_cap)
  else if c.queued_reqs >= t.cfg.max_queue_per_conn then
    refuse t item Api.Overloaded
      (Printf.sprintf "connection queue full (%d queued)"
         t.cfg.max_queue_per_conn)
  else admit t c item

let handle_line t ?conn ~reply line =
  match Api.request_of_line line with
  | Ok request ->
      submit t ?conn ~reply:(fun r -> reply (Api.response_to_line r)) request
  | Error e ->
      Obs.count "serve.requests";
      t.rejected <- t.rejected + 1;
      Obs.count "serve.rejected";
      Obs.count "serve.responses";
      Obs.count "serve.errors";
      t.served <- t.served + 1;
      (match conn with
      | Some c -> c.delivered <- c.delivered + 1
      | None -> t.default_conn.delivered <- t.default_conn.delivered + 1);
      reply
        (Api.response_to_line
           {
             Api.id = Api.frame_id line;
             trace = Api.frame_trace line;
             result = Error e;
           })

(* ---------- completion side ---------- *)

let finish_whole t wf outcome =
  let now = Obs.now_us () in
  let d =
    match outcome with
    | Ok d -> d
    | Error exn ->
        {
          w_result =
            Error
              (Api.error Api.Internal
                 ("worker raised: " ^ Printexc.to_string exn));
          w_stats = None;
          w_picked_us = wf.w_launched_us;
          w_done_us = now;
        }
  in
  Obs.record "pool.completion_wait_us" (max 0 (now - d.w_done_us));
  reemit_pool_stats t d.w_stats;
  wf.w_item.iconn.c_inflight <- wf.w_item.iconn.c_inflight - 1;
  maybe_forget t wf.w_item.iconn;
  Obs.Scope.with_scope wf.w_scope @@ fun () ->
  Obs.span "serve.request"
    ~args:[ ("op", wf.w_op); ("trace", wf.w_label) ]
  @@ fun () ->
  let deliver_from = Obs.now_us () in
  answer t wf.w_item d.w_result;
  let delivered = Obs.now_us () in
  record_request t ~label:wf.w_label ~op:wf.w_op
    ~queue_wait_us:(max 0 (wf.w_launched_us - wf.w_item.enqueued_us))
    ~solve_us:(max 0 (d.w_done_us - d.w_picked_us))
    ~encode_us:(max 0 (delivered - deliver_from))

let finalize_batch t job =
  Obs.Scope.with_scope job.b_scope @@ fun () ->
  Obs.span "serve.request"
    ~args:[ ("op", "batch"); ("trace", job.b_label) ]
  @@ fun () ->
  let deliver_from = Obs.now_us () in
  let result =
    try
      let outcomes, stats =
        Msts.Batch.assemble job.plan ~jobs:(Msts.Pool.jobs t.pool)
          ~solved:job.solved ~wait_us:job.wait_us ~busy_us:job.busy_us
      in
      Ok
        (Api.json_of_reply
           (Api.Batched
              {
                problems = job.b_problems;
                outcomes;
                stats;
                cache_capacity = t.cfg.cache_capacity;
              }))
    with exn -> Error (Api.error Api.Internal (Printexc.to_string exn))
  in
  answer t job.b_item result;
  let delivered = Obs.now_us () in
  let solve_us =
    if job.first_picked_us = max_int then 0
    else max 0 (job.last_done_us - job.first_picked_us)
  in
  record_request t ~label:job.b_label ~op:"batch"
    ~queue_wait_us:(max 0 (job.first_launch_us - job.b_item.enqueued_us))
    ~solve_us
    ~encode_us:(max 0 (delivered - deliver_from))

let finish_shard t sf outcome =
  let now = Obs.now_us () in
  let d =
    match outcome with
    | Ok d -> d
    | Error exn ->
        {
          s_outcome = Error (Printexc.to_string exn);
          s_picked_us = sf.s_launched_us;
          s_done_us = now;
        }
  in
  Obs.record "pool.completion_wait_us" (max 0 (now - d.s_done_us));
  let job = sf.s_job in
  job.solved.(sf.s_slot) <- d.s_outcome;
  job.wait_us.(sf.s_slot) <- max 0 (d.s_picked_us - sf.s_launched_us);
  job.busy_us.(sf.s_slot) <- max 0 (d.s_done_us - d.s_picked_us);
  if d.s_picked_us < job.first_picked_us then job.first_picked_us <- d.s_picked_us;
  if d.s_done_us > job.last_done_us then job.last_done_us <- d.s_done_us;
  job.b_item.iconn.c_inflight <- job.b_item.iconn.c_inflight - 1;
  maybe_forget t job.b_item.iconn;
  job.remaining <- job.remaining - 1;
  if job.remaining = 0 then finalize_batch t job

(* Whole and shard tickets carry different payload types, so each flight
   is polled and finished through its own arm. *)
let collect t =
  ignore (Msts.Pool.drain_completions t.pool);
  if t.inflight <> [] then begin
    let still = ref [] in
    List.iter
      (fun flight ->
        let done_ =
          match flight with
          | F_whole wf -> (
              match Msts.Pool.poll wf.w_ticket with
              | None -> false
              | Some r ->
                  finish_whole t wf r;
                  true)
          | F_shard sf -> (
              match Msts.Pool.poll sf.s_ticket with
              | None -> false
              | Some r ->
                  finish_shard t sf r;
                  true)
        in
        if done_ then t.inflight_count <- t.inflight_count - 1
        else still := flight :: !still)
      t.inflight;
    t.inflight <- List.rev !still
  end

(* ---------- launch side (the DRR pump) ---------- *)

let timed_out t ~now ~enqueued_us =
  t.cfg.timeout_us > 0 && now - enqueued_us > t.cfg.timeout_us

let timeout_answer t item now =
  t.timeouts <- t.timeouts + 1;
  t.rejected <- t.rejected + 1;
  Obs.count "serve.timeouts";
  answer t item
    (Error
       (Api.error Api.Timeout
          (Printf.sprintf "queued %d us, deadline %d us"
             (now - item.enqueued_us) t.cfg.timeout_us)))

(* First unit of a request leaves the queue: the request's queue wait is
   decided now, globally and per connection. *)
let note_launch_wait c ~now ~enqueued_us =
  let wait = max 0 (now - enqueued_us) in
  Obs.record "serve.queue_wait_us" wait;
  Obs.Histogram.add c.queue_wait wait

let track t c flight =
  c.c_inflight <- c.c_inflight + 1;
  let ready =
    match flight with
    | F_whole wf -> (
        match Msts.Pool.poll wf.w_ticket with
        | Some r ->
            finish_whole t wf r;
            true
        | None -> false)
    | F_shard sf -> (
        match Msts.Pool.poll sf.s_ticket with
        | Some r ->
            finish_shard t sf r;
            true
        | None -> false)
  in
  (* An inline pool (jobs=1) completes the ticket during [submit]: finish
     it on the spot so a single-core engine still clears a whole
     micro-batch per dispatch instead of one unit per completion slot. *)
  if not ready then begin
    t.inflight <- t.inflight @ [ flight ];
    t.inflight_count <- t.inflight_count + 1
  end

let launch_whole t c item now =
  let label = trace_label t item.request in
  let op_name = Api.op_name item.request.Api.op in
  let scope = Obs.Scope.fresh () in
  let stats_ref = ref None in
  let solver problems =
    let outcomes, stats = inline_solver t problems in
    stats_ref := Some stats;
    (outcomes, stats)
  in
  let thunk () =
    let picked = Obs.now_us () in
    let result =
      match
        Api.exec ~cache_capacity:t.cfg.cache_capacity ~solver
          item.request.Api.op
      with
      | Ok reply -> Ok (Api.json_of_reply reply)
      | Error e -> Error e
    in
    {
      w_result = result;
      w_stats = !stats_ref;
      w_picked_us = picked;
      w_done_us = Obs.now_us ();
    }
  in
  let ticket =
    Obs.Scope.with_scope scope (fun () -> Msts.Pool.submit t.pool thunk)
  in
  track t c
    (F_whole
       {
         w_item = item;
         w_scope = scope;
         w_label = label;
         w_op = op_name;
         w_launched_us = now;
         w_ticket = ticket;
       })

let launch_shard t c job slot now =
  if job.launched = 0 then job.first_launch_us <- now;
  job.launched <- job.launched + 1;
  let request = Msts.Batch.shard_request job.plan slot in
  let thunk () =
    let picked = Obs.now_us () in
    let outcome = Api.guarded_solve request in
    { s_outcome = outcome; s_picked_us = picked; s_done_us = Obs.now_us () }
  in
  let ticket =
    Obs.Scope.with_scope job.b_scope (fun () -> Msts.Pool.submit t.pool thunk)
  in
  track t c
    (F_shard { s_job = job; s_slot = slot; s_launched_us = now; s_ticket = ticket })

(* Account one request leaving the queue (its last queued unit popped). *)
let request_dequeued t c =
  t.queued_requests <- t.queued_requests - 1;
  c.queued_reqs <- c.queued_reqs - 1

(* Process one popped unit.  Returns [true] when the unit did real work
   (and must be charged against the conn's deficit and the round's
   budget); cancelled shards ride free. *)
let process_unit t c now u =
  match u with
  | Whole item ->
      request_dequeued t c;
      note_launch_wait c ~now ~enqueued_us:item.enqueued_us;
      if timed_out t ~now ~enqueued_us:item.enqueued_us then
        timeout_answer t item now
      else launch_whole t c item now;
      true
  | Shard (job, slot) ->
      job.b_queued_units <- job.b_queued_units - 1;
      if job.b_queued_units = 0 then request_dequeued t c;
      if job.cancelled then false
      else if
        job.launched = 0
        && timed_out t ~now ~enqueued_us:job.b_item.enqueued_us
      then begin
        (* Still whole: no shard has launched yet, so the batch can be
           timed out as one request.  Once a shard is on a worker the
           batch is in flight and runs to completion. *)
        job.cancelled <- true;
        note_launch_wait c ~now ~enqueued_us:job.b_item.enqueued_us;
        timeout_answer t job.b_item now;
        true
      end
      else begin
        launch_shard t c job slot now;
        true
      end
  | Finish job ->
      job.b_queued_units <- job.b_queued_units - 1;
      request_dequeued t c;
      note_launch_wait c ~now ~enqueued_us:job.b_item.enqueued_us;
      if timed_out t ~now ~enqueued_us:job.b_item.enqueued_us then
        timeout_answer t job.b_item now
      else begin
        job.first_launch_us <- now;
        finalize_batch t job
      end;
      true

(* Deficit round robin over the active connections: each visit tops the
   connection's deficit up by [quantum] and launches one unit per credit,
   so a connection that floods the queue advances one unit per turn while
   everyone else stays at its own front of line. *)
let pump t =
  let cap = max_inflight t in
  let processed = ref 0 in
  let budget () = t.inflight_count < cap && !processed < t.cfg.max_batch in
  let now = Obs.now_us () in
  let rec visit () =
    if budget () && not (Queue.is_empty t.ring) then begin
      let cid = Queue.pop t.ring in
      match Hashtbl.find_opt t.conns cid with
      | None -> visit ()
      | Some c ->
          if Queue.is_empty c.q then begin
            c.active <- false;
            c.deficit <- 0;
            maybe_forget t c;
            visit ()
          end
          else begin
            c.deficit <- c.deficit + t.cfg.quantum;
            Obs.record "serve.fairness.deficit" c.deficit;
            while
              c.deficit > 0 && (not (Queue.is_empty c.q)) && budget ()
            do
              let u = Queue.pop c.q in
              t.queued_units <- t.queued_units - 1;
              if process_unit t c now u then begin
                c.deficit <- c.deficit - 1;
                incr processed
              end
            done;
            if Queue.is_empty c.q then begin
              c.active <- false;
              c.deficit <- 0;
              maybe_forget t c
            end
            else Queue.add cid t.ring;
            visit ()
          end
    end
  in
  visit ();
  if !processed > 0 then begin
    Obs.record "serve.batch_size" !processed;
    Obs.record "serve.inflight" t.inflight_count
  end

let dispatch t =
  let before = t.served in
  collect t;
  pump t;
  collect t;
  t.served - before

let drain t =
  let total = ref 0 in
  while t.queued_units > 0 || t.inflight_count > 0 do
    let delivered = dispatch t in
    total := !total + delivered;
    if delivered = 0 && t.inflight_count > 0 then
      (* Solves are still on worker domains: sleep on the completion
         pipe instead of spinning. *)
      ignore
        (try Unix.select [ wakeup_fd t ] [] [] 0.05
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], []))
  done;
  !total

let shutdown t = Msts.Pool.shutdown t.pool
