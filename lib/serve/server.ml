module Obs = Msts.Obs

type config = {
  socket_path : string;
  engine : Engine.config;
  telemetry : string option;
  ring_capacity : int;
  quiet : bool;
  metrics_out : string option;
  metrics_interval : float;
}

let default_config ~socket_path =
  {
    socket_path;
    engine = Engine.default_config;
    telemetry = None;
    ring_capacity = 1024;
    quiet = false;
    metrics_out = None;
    metrics_interval = 1.0;
  }

(* Atomic rewrite: scrapers reading FILE never see a half-written
   exposition — the rename swaps the complete new snapshot in. *)
let write_metrics_file engine path =
  try
    let tmp = path ^ ".tmp" in
    Out_channel.with_open_text tmp (fun oc ->
        Out_channel.output_string oc (Engine.exposition engine));
    Sys.rename tmp path
  with Sys_error msg ->
    Printf.eprintf "msts serve: cannot write metrics to %s: %s\n%!" path msg

(* One connected client: accumulated input bytes (split on '\n'), an
   output backlog drained as the socket accepts writes, and the engine's
   per-connection scheduling handle. *)
type client = {
  fd : Unix.file_descr;
  conn : Engine.conn;
  inbuf : Buffer.t;
  mutable out : string;
  mutable out_off : int;
  mutable dead : bool;
}

let queue_out client line =
  if not client.dead then
    client.out <- String.sub client.out client.out_off
                    (String.length client.out - client.out_off) ^ line;
  if not client.dead then client.out_off <- 0

let has_out client = String.length client.out - client.out_off > 0

let flush_out client =
  (* Write as much of the backlog as the socket takes; never blocks. *)
  try
    let len = String.length client.out - client.out_off in
    if len > 0 then begin
      let n =
        Unix.write_substring client.fd client.out client.out_off len
      in
      client.out_off <- client.out_off + n;
      if client.out_off = String.length client.out then begin
        client.out <- "";
        client.out_off <- 0
      end
    end
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> client.dead <- true

(* Feed freshly read bytes to the engine, one complete line at a time;
   a trailing partial line waits in [inbuf] for the next read. *)
let consume engine client bytes n =
  Buffer.add_subbytes client.inbuf bytes 0 n;
  let data = Buffer.contents client.inbuf in
  Buffer.clear client.inbuf;
  let rec split from =
    match String.index_from_opt data from '\n' with
    | None ->
        Buffer.add_substring client.inbuf data from (String.length data - from)
    | Some nl ->
        let line = String.sub data from (nl - from) in
        if String.trim line <> "" then
          Engine.handle_line engine ~conn:client.conn
            ~reply:(queue_out client) line;
        split (nl + 1)
  in
  split 0

let read_chunk = Bytes.create 65536

(* Drain everything currently readable from one client; [`Eof] once the
   peer closed its write end. *)
let rec sweep_client engine client =
  match Unix.read client.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> `Eof
  | n ->
      consume engine client read_chunk n;
      sweep_client engine client
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      `More
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let run cfg =
  let stop = ref false in
  let prev_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true))
  in
  let prev_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true))
  in
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore_signals () =
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int;
    Sys.set_signal Sys.sigpipe prev_pipe
  in
  let ring = Obs.Ring.create ~capacity:cfg.ring_capacity () in
  let telemetry =
    Option.map
      (fun path ->
        let oc = Out_channel.open_text path in
        (path, oc, Obs.Streaming.create oc))
      cfg.telemetry
  in
  let sinks =
    Obs.Ring.sink ring
    :: (match telemetry with
       | None -> []
       | Some (_, _, s) -> [ Obs.Streaming.sink s ])
  in
  Obs.set_sink (Some (Obs.tee sinks));
  let close_telemetry () =
    Obs.set_sink None;
    Option.iter
      (fun (_, oc, s) ->
        Obs.Streaming.flush s;
        Out_channel.close oc)
      telemetry
  in
  match
    let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
       Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
       Unix.listen listen_fd 64;
       Unix.set_nonblock listen_fd;
       Ok listen_fd
     with
    | Unix.Unix_error (err, _, _) ->
        close_quietly listen_fd;
        Error (Unix.error_message err)
    | Sys_error msg ->
        close_quietly listen_fd;
        Error msg)
  with
  | Error msg ->
      Printf.eprintf "msts serve: cannot bind %s: %s\n%!" cfg.socket_path msg;
      close_telemetry ();
      restore_signals ();
      2
  | Ok listen_fd -> (
      let engine = Engine.create cfg.engine in
      (* The engine's aggregating metrics sink joins the tee so the live
         exposition (metrics op, --metrics-out) sees every serve.* /
         online.* / solve event emitted on this domain. *)
      Obs.set_sink (Some (Obs.tee (Engine.metrics_sink engine :: sinks)));
      let last_metrics = ref 0.0 in
      let maybe_write_metrics ~force =
        Option.iter
          (fun path ->
            let now = Unix.gettimeofday () in
            if force || now -. !last_metrics >= cfg.metrics_interval then begin
              last_metrics := now;
              write_metrics_file engine path
            end)
          cfg.metrics_out
      in
      maybe_write_metrics ~force:true;
      if not cfg.quiet then
        Printf.printf "msts serve: listening on %s (jobs=%d, cache=%d, queue=%d)\n%!"
          cfg.socket_path cfg.engine.Engine.jobs cfg.engine.Engine.cache_capacity
          cfg.engine.Engine.queue_cap;
      let clients = ref [] in
      let drop_dead () =
        clients :=
          List.filter
            (fun c ->
              if c.dead then begin
                close_quietly c.fd;
                Engine.close_conn engine c.conn
              end;
              not c.dead)
            !clients
      in
      let accept_all () =
        let rec go () =
          match Unix.accept listen_fd with
          | fd, _ ->
              Unix.set_nonblock fd;
              Obs.count "serve.connections";
              clients :=
                {
                  fd;
                  conn = Engine.open_conn engine;
                  inbuf = Buffer.create 256;
                  out = "";
                  out_off = 0;
                  dead = false;
                }
                :: !clients;
              go ()
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ()
        in
        go ()
      in
      let serve_loop () =
        while not (!stop || Engine.stopping engine) do
          drop_dead ();
          (* The pool's completion pipe joins the read set: a worker
             finishing a solve wakes the loop exactly like socket bytes
             would, so responses leave as soon as they exist. *)
          let read_fds =
            listen_fd :: Engine.wakeup_fd engine
            :: List.map (fun c -> c.fd) !clients
          in
          let write_fds =
            List.filter_map
              (fun c -> if has_out c then Some c.fd else None)
              !clients
          in
          let timeout = if Engine.runnable engine then 0.0 else 0.05 in
          let readable, writable, _ =
            try Unix.select read_fds write_fds [] timeout
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          if List.mem listen_fd readable then accept_all ();
          List.iter
            (fun c ->
              if (not c.dead) && List.mem c.fd readable then
                match sweep_client engine c with
                | `Eof -> if not (has_out c) then c.dead <- true
                | `More -> ())
            !clients;
          ignore (Engine.dispatch engine);
          maybe_write_metrics ~force:false;
          List.iter
            (fun c ->
              if (not c.dead) && (List.mem c.fd writable || has_out c) then
                flush_out c)
            !clients
        done
      in
      let epilogue () =
        (* Frames already written by clients are in-flight: sweep them in
           before refusing new work, then drain to the last response. *)
        List.iter
          (fun c -> if not c.dead then ignore (sweep_client engine c))
          !clients;
        Engine.stop engine;
        let drained = Engine.drain engine in
        let deadline = Unix.gettimeofday () +. 10.0 in
        let rec flush_all () =
          drop_dead ();
          let waiting = List.filter has_out !clients in
          if waiting <> [] && Unix.gettimeofday () < deadline then begin
            (match
               Unix.select [] (List.map (fun c -> c.fd) waiting) [] 0.5
             with
            | _, writable, _ ->
                List.iter
                  (fun c -> if List.mem c.fd writable then flush_out c)
                  waiting
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            flush_all ()
          end
        in
        flush_all ();
        List.iter (fun c -> close_quietly c.fd) !clients;
        close_quietly listen_fd;
        if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
        maybe_write_metrics ~force:true;
        Engine.shutdown engine;
        if not cfg.quiet then
          Printf.printf "msts serve: drained %d request(s), served %d, bye\n%!"
            drained (Engine.served engine);
        close_telemetry ();
        restore_signals ();
        0
      in
      try
        serve_loop ();
        epilogue ()
      with exn ->
        let tail = Obs.Ring.to_jsonl ring in
        Printf.eprintf "msts serve: fatal: %s\n%s%!" (Printexc.to_string exn)
          (if tail = "" then "" else "last telemetry events:\n" ^ tail);
        List.iter (fun c -> close_quietly c.fd) !clients;
        close_quietly listen_fd;
        if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path;
        (try Engine.shutdown engine with _ -> ());
        close_telemetry ();
        restore_signals ();
        125)
