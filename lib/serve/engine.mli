(** The daemon's request engine, with no sockets in sight.

    The engine owns the serving policy: a bounded FIFO request queue with
    admission control, per-request queue-wait deadlines, a persistent
    {!Msts.Pool} with the shared {!Msts.Batch} LRU solve cache, and the
    [serve.*] telemetry.  The socket layer ({!Server}) only moves bytes;
    everything observable about serving — which requests are admitted,
    rejected, timed out, answered, and in what order — is decided here, so
    the whole policy is testable in-process (see [test/test_obs.ml]'s
    drift guard and [test/test_api.ml]).

    Flow: {!handle_line} (or {!submit}) either answers immediately
    (control operations, parse errors, admission rejections) or enqueues;
    {!dispatch} drains one micro-batch through {!Msts.Api.exec} backed by
    a [Batch.run] solver over the engine's pool and cache.  Responses are
    delivered through the per-request [reply] callback, always on the
    calling domain.

    Telemetry (all emitted on the engine's domain, catalogued in
    docs/OBSERVABILITY.md): counters [serve.requests], [serve.accepted],
    [serve.rejected], [serve.timeouts], [serve.responses], [serve.errors];
    histograms [serve.queue_wait_us] (admission-to-dispatch latency) and
    [serve.batch_size] (requests per dispatch round).  Dispatch also emits
    the usual [pool.*] counters via {!Msts.Batch.run}.

    Per-request attribution: every dispatched solve runs under a fresh
    {!Msts.Obs.Scope} inside a [serve.request] span (args: op name and
    trace label), and records its latency breakdown as the
    [request.queue_wait_us] / [request.solve_us] / [request.encode_us]
    histograms — both through {!Msts.Obs.record} (scoped, sink-visible)
    and into engine-side histograms that feed {!stats_json} and
    {!exposition} even with no sink installed.  The slowest requests are
    kept in a bounded top-K log ({!slow_requests}). *)

type config = {
  jobs : int;  (** pool worker domains (clamped by {!Msts.Pool.create}) *)
  cache_capacity : int;  (** shared LRU solve-cache capacity, >= 1 *)
  queue_cap : int;
      (** admission control: solve requests queued beyond this are
          rejected with [`overloaded] *)
  timeout_us : int;
      (** per-request queue-wait deadline in microseconds; a request
          still queued past it is answered [`timeout] instead of solved
          (a pure OCaml solve cannot be preempted, so the deadline is
          checked at dispatch).  0 disables timeouts. *)
  max_batch : int;  (** most requests dispatched per {!dispatch} round *)
  slow_log : int;
      (** how many slowest requests {!slow_requests} retains (top-K by
          total latency); 0 disables the log *)
}

val default_config : config
(** [jobs = 1], [cache_capacity = 256], [queue_cap = 1024],
    [timeout_us = 0], [max_batch = 32], [slow_log = 16]. *)

type t

val create : config -> t
(** Starts the worker pool.  @raise Invalid_argument on a non-positive
    [cache_capacity], [queue_cap] or [max_batch], or a negative
    [slow_log]. *)

val config : t -> config

val submit : t -> reply:(Msts.Api.response -> unit) -> Msts.Api.request -> unit
(** Admit one request.  Control operations ([Ping]/[Stats]/[Shutdown])
    are answered synchronously — [Shutdown] flips {!stopping} and answers
    [Bye].  Online operations ([Online_*]) are answered synchronously by
    the engine's {!Msts_online.Service} — also while draining, so an
    in-flight online session loses no deltas to a SIGTERM.  Solve
    operations are enqueued (reply comes from a later {!dispatch}), or
    answered immediately with [`shutting_down] when {!stopping}, or
    [`overloaded] when the queue is full. *)

val handle_line : t -> reply:(string -> unit) -> string -> unit
(** The full wire step: parse one JSONL frame, {!submit} it, and deliver
    every response as a newline-terminated frame.  Malformed frames are
    answered with a [`bad_request] error response (never dropped, never a
    closed connection). *)

val dispatch : t -> int
(** Process one micro-batch (at most [max_batch] queued requests):
    time out the expired, solve the rest on the pool, deliver every
    reply.  Returns the number of responses delivered; 0 when idle. *)

val drain : t -> int
(** {!dispatch} until the queue is empty (used at shutdown — queued
    requests are in-flight work and are never dropped).  Returns the
    number of responses delivered. *)

val pending : t -> int
(** Currently queued (admitted, not yet dispatched) requests. *)

val stop : t -> unit
(** Enter the draining state: subsequent solve submissions are rejected
    with [`shutting_down]; already-queued work is unaffected. *)

val stopping : t -> bool

val served : t -> int
(** Total responses delivered over the engine's lifetime. *)

val rejected : t -> int
(** Total admission rejections (overload + shutting-down + timeouts). *)

val online_sessions : t -> int
(** Currently open online (anytime-scheduling) sessions. *)

val stats_json : t -> Msts.Json.t
(** The [Stats] reply payload: version, pool size, cache
    capacity/occupancy, queue length, served/rejected totals, the
    stopping flag, the per-request latency breakdown (["request"]: one
    {!Msts.Obs.Histogram.to_json} blob each for queue-wait, solve and
    encode) and the slow-request log (["slow_requests"], slowest
    first). *)

type slow_entry = {
  trace_label : string;  (** client trace context, or engine-assigned "r<n>" *)
  op : string;
  queue_wait_us : int;
  solve_us : int;
  encode_us : int;
  total_us : int;
}

val slow_requests : t -> slow_entry list
(** The top-[slow_log] slowest dispatched requests, slowest first. *)

val metrics_sink : t -> Msts.Obs.sink
(** The engine's aggregating metrics sink (a log-less {!Msts.Obs.Memory}).
    The server tees every event into it so {!exposition} carries the full
    counter/histogram families; it is always safe to feed. *)

val exposition : t -> string
(** The live Prometheus text exposition ({!Msts.Obs.Prometheus}): all
    counters and histograms accumulated by {!metrics_sink}, the exact
    engine-side [request.*] breakdown, and gauges for queue depth, open
    online sessions, cache occupancy/capacity and the draining flag.
    This is the [Metrics_dump] reply body and what [--metrics-out]
    writes. *)

val shutdown : t -> unit
(** Shut the worker pool down.  Idempotent; call after the final
    {!drain}. *)
