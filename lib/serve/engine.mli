(** The daemon's request engine, with no sockets in sight.

    The engine owns the serving policy: per-connection FIFO queues under
    a deficit-round-robin scheduler, admission control (a global cap and
    a per-connection cap), per-request queue-wait deadlines, a persistent
    {!Msts.Pool} with the shared {!Msts.Batch} LRU solve cache, and the
    [serve.*] telemetry.  The socket layer ({!Server}) only moves bytes;
    everything observable about serving — which requests are admitted,
    rejected, timed out, answered, and in what order — is decided here, so
    the whole policy is testable in-process (see [test/test_serve.ml],
    [test/test_obs.ml]'s drift guard and [test/test_api.ml]).

    Flow: {!handle_line} (or {!submit}) either answers immediately
    (control operations, parse errors, admission rejections) or enqueues
    work units on the submitting connection's queue — one [Whole] unit
    per singleton request, one shard unit per distinct uncached problem
    of a [batch] request ({!Msts.Batch.shard}).  {!dispatch} is
    {e non-blocking}: it collects finished worker tickets
    ({!Msts.Pool.poll}), pumps the fairness scheduler to launch new units
    ({!Msts.Pool.submit}), and collects again — solves run on worker
    domains while the caller keeps reading and writing frames.  Responses
    are delivered through the per-request [reply] callback, always on the
    calling domain, as completions arrive.

    Fairness: each visit of the round-robin ring tops a connection's
    deficit up by [quantum] and launches one unit per credit, so a
    flooding (pipelining) client advances one unit per turn while every
    other connection stays at its own front of line; [max_queue_per_conn]
    bounds any one connection's backlog independently of [queue_cap].

    Telemetry (all emitted on the engine's domain, catalogued in
    docs/OBSERVABILITY.md): counters [serve.requests], [serve.accepted],
    [serve.rejected], [serve.timeouts], [serve.responses], [serve.errors];
    histograms [serve.queue_wait_us] (admission-to-launch latency, one
    sample per request), [serve.batch_size] (units launched per pump),
    [serve.inflight] (in-flight units after each pump),
    [serve.fairness.deficit] (a connection's deficit at each scheduler
    visit) and [pool.completion_wait_us] (completion-to-collection
    latency per ticket).  The [pool.*] solve counters are re-emitted
    engine-side from the stats each worker hands back (worker domains
    have no sink).

    Per-request attribution: every launched unit runs under a fresh
    {!Msts.Obs.Scope} that {!Msts.Pool.submit} carries onto the worker
    domain, so [request.solve_us] and solver-side events stay attributed
    to their request; delivery happens inside a [serve.request] span
    (args: op name and trace label).  The latency breakdown is recorded
    as the [request.queue_wait_us] / [request.solve_us] /
    [request.encode_us] histograms — both through {!Msts.Obs.record}
    (scoped, sink-visible) and into engine-side histograms that feed
    {!stats_json} and {!exposition} even with no sink installed.  The
    slowest requests are kept in a bounded top-K log
    ({!slow_requests}). *)

type config = {
  jobs : int;  (** pool worker domains (clamped by {!Msts.Pool.create}) *)
  cache_capacity : int;  (** shared LRU solve-cache capacity, >= 1 *)
  queue_cap : int;
      (** admission control: solve requests queued beyond this are
          rejected with [`overloaded] *)
  timeout_us : int;
      (** per-request queue-wait deadline in microseconds; a request
          still queued past it is answered [`timeout] instead of solved
          (a pure OCaml solve cannot be preempted, so the deadline is
          checked at launch; a batch whose first shard already launched
          runs to completion).  0 disables timeouts. *)
  max_batch : int;  (** most units launched per {!dispatch} round *)
  slow_log : int;
      (** how many slowest requests {!slow_requests} retains (top-K by
          total latency); 0 disables the log *)
  max_queue_per_conn : int;
      (** per-connection admission control: one connection's queued
          requests beyond this are rejected with [`overloaded] even when
          the global queue has room, >= 1 *)
  quantum : int;
      (** deficit-round-robin credit added per scheduler visit (units a
          connection may launch per turn), >= 1 *)
  max_inflight : int;
      (** most units concurrently on worker domains; 0 means
          [2 * jobs] *)
}

val default_config : config
(** [jobs = 1], [cache_capacity = 256], [queue_cap = 1024],
    [timeout_us = 0], [max_batch = 32], [slow_log = 16],
    [max_queue_per_conn = 256], [quantum = 1], [max_inflight = 0]. *)

type t

val create : config -> t
(** Starts the worker pool (and its completion pipe, see {!wakeup_fd}).
    @raise Invalid_argument on a non-positive [cache_capacity],
    [queue_cap], [max_batch], [max_queue_per_conn] or [quantum], a
    negative [slow_log] or [max_inflight], or [jobs < 1]. *)

val config : t -> config

(** {2 Connections}

    The fairness scheduler needs to know which requests belong to the
    same client.  The server opens one {!conn} per accepted socket;
    callers that never open one (tests, in-process embedding) share an
    implicit default connection. *)

type conn

val open_conn : t -> conn
(** Register a new connection (its own queue, deficit and counters). *)

val close_conn : t -> conn -> unit
(** The peer is gone.  Already-queued work is still processed (replies
    land in the closed socket's dead-letter buffer); the record is
    forgotten once its queue and in-flight units drain. *)

val conn_id : conn -> int
(** Stable id, as reported in {!stats_json}'s ["connections"]. *)

val submit :
  t -> ?conn:conn -> reply:(Msts.Api.response -> unit) -> Msts.Api.request -> unit
(** Admit one request on [conn] (default: the shared implicit
    connection).  Control operations ([Ping]/[Stats]/[Shutdown]) are
    answered synchronously — [Shutdown] flips {!stopping} and answers
    [Bye].  Online operations ([Online_*]) are answered synchronously by
    the engine's {!Msts_online.Service} — also while draining, so an
    in-flight online session loses no deltas to a SIGTERM.  Solve
    operations are enqueued (reply comes from a later {!dispatch}), or
    answered immediately with [`shutting_down] when {!stopping}, or
    [`overloaded] when the global queue or the connection's queue is
    full.  A [batch] request is sharded at admission
    ({!Msts.Batch.shard}): its distinct uncached problems become
    independent units, and the reply is assembled
    ({!Msts.Batch.assemble}) when the last one completes — byte-identical
    to the unsharded reply. *)

val handle_line : t -> ?conn:conn -> reply:(string -> unit) -> string -> unit
(** The full wire step: parse one JSONL frame, {!submit} it, and deliver
    every response as a newline-terminated frame.  Malformed frames are
    answered with a [`bad_request] error response (never dropped, never a
    closed connection). *)

val dispatch : t -> int
(** One non-blocking engine turn: collect finished worker tickets and
    deliver their replies, pump the fairness scheduler (launch up to
    [max_batch] units, bounded by [max_inflight]; expired requests are
    answered [`timeout] instead of launched), collect again.  Returns the
    number of responses delivered; 0 when nothing completed (solves may
    still be in flight — see {!inflight} and {!wakeup_fd}). *)

val drain : t -> int
(** {!dispatch} until no unit is queued or in flight, sleeping on the
    completion pipe between rounds (used at shutdown — queued and
    in-flight work is never dropped, every admitted frame is answered).
    Returns the number of responses delivered. *)

val pending : t -> int
(** Admitted requests with units still queued (not yet fully launched). *)

val inflight : t -> int
(** Units currently executing (or completed but uncollected) on the
    pool. *)

val runnable : t -> bool
(** Whether {!dispatch} could launch work right now: units are queued
    and the in-flight cap has room.  The server polls with a zero select
    timeout only when this holds; otherwise it sleeps on {!wakeup_fd}. *)

val wakeup_fd : t -> Unix.file_descr
(** The pool's completion self-pipe ({!Msts.Pool.completion_fd}):
    becomes readable when a worker finishes a unit, so a select loop
    wakes immediately to {!dispatch}.  Owned by the engine's pool; never
    read or close it directly. *)

val stop : t -> unit
(** Enter the draining state: subsequent solve submissions are rejected
    with [`shutting_down]; already-queued work is unaffected. *)

val stopping : t -> bool

val served : t -> int
(** Total responses delivered over the engine's lifetime. *)

val rejected : t -> int
(** Total admission rejections (overload + shutting-down + timeouts). *)

val online_sessions : t -> int
(** Currently open online (anytime-scheduling) sessions. *)

val stats_json : t -> Msts.Json.t
(** The [Stats] reply payload: version, pool size, cache
    capacity/occupancy, queue length, in-flight unit count,
    served/rejected totals, the stopping flag, the per-request latency
    breakdown (["request"]: one {!Msts.Obs.Histogram.to_json} blob each
    for queue-wait, solve and encode), the per-connection scheduler state
    (["connections"]: id, queue depth, deficit, in-flight units,
    admitted/delivered totals and the connection's queue-wait histogram)
    and the slow-request log (["slow_requests"], slowest first). *)

type slow_entry = {
  trace_label : string;  (** client trace context, or engine-assigned "r<n>" *)
  op : string;
  queue_wait_us : int;
  solve_us : int;
  encode_us : int;
  total_us : int;
}

val slow_requests : t -> slow_entry list
(** The top-[slow_log] slowest dispatched requests, slowest first. *)

val metrics_sink : t -> Msts.Obs.sink
(** The engine's aggregating metrics sink (a log-less {!Msts.Obs.Memory}).
    The server tees every event into it so {!exposition} carries the full
    counter/histogram families; it is always safe to feed. *)

val exposition : t -> string
(** The live Prometheus text exposition ({!Msts.Obs.Prometheus}): all
    counters and histograms accumulated by {!metrics_sink}, the exact
    engine-side [request.*] breakdown, and gauges for queue depth,
    in-flight units, open online sessions, cache occupancy/capacity and
    the draining flag.  This is the [Metrics_dump] reply body and what
    [--metrics-out] writes. *)

val shutdown : t -> unit
(** Shut the worker pool down (closing {!wakeup_fd}).  Idempotent; call
    after the final {!drain}. *)
