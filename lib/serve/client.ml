module Api = Msts.Api

type t = { socket : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let socket = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect socket (Unix.ADDR_UNIX path) with
  | () ->
      Ok
        {
          socket;
          ic = Unix.in_channel_of_descr socket;
          oc = Unix.out_channel_of_descr socket;
        }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close socket with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message err))

let close t = try close_out t.oc with Sys_error _ | Unix.Unix_error _ -> ()
let fd t = t.socket

let send_line t line =
  output_string t.oc line;
  if String.length line = 0 || line.[String.length line - 1] <> '\n' then
    output_char t.oc '\n';
  flush t.oc

let recv_line t =
  match input_line t.ic with
  | line -> Some line
  | exception End_of_file -> None

let rpc t request =
  send_line t (Api.request_to_line request);
  match recv_line t with
  | None -> Error (Api.error Api.Bad_request "connection closed by server")
  | Some line -> (
      match Api.response_of_line line with
      | Ok response -> Ok response
      | Error e -> Error e)
