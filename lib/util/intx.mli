(** Integer helpers shared across the library.

    Schedule times are exact integers (the paper types [T : [1;n] -> N]), so
    a handful of total integer operations recur everywhere. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is ⌈a/b⌉ for [a >= 0], [b > 0]. *)

val clamp : lo:int -> hi:int -> int -> int
(** Restrict a value to [\[lo, hi\]]. *)

val sum : int array -> int

val max_array : int array -> int
(** @raise Invalid_argument on empty input. *)

val min_array : int array -> int
(** @raise Invalid_argument on empty input. *)

val argmin : int array -> int
(** Index of the first minimum. @raise Invalid_argument on empty input. *)

val range : int -> int -> int list
(** [range lo hi] is [\[lo; lo+1; ...; hi\]]; empty if [hi < lo].  Mirrors
    the paper's interval notation ⟦lo;hi⟧. *)

val count_leq : int array -> int -> int
(** [count_leq a x] is the number of elements [<= x] in the sorted
    (non-decreasing) array [a], by bisection in O(log |a|).  Used to read
    task counts off cached margin staircases. *)

val binary_search_least : lo:int -> hi:int -> (int -> bool) -> int option
(** [binary_search_least ~lo ~hi p] is the least [x] in [\[lo,hi\]] with
    [p x], assuming [p] is monotone (false … false true … true); [None] if
    [p] holds nowhere in the range. *)
