(** Small descriptive-statistics toolkit for the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; 0.0 on an empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0.0 on fewer than two samples. *)

val median : float array -> float
(** Median (average of middle two on even length); 0.0 on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs q] with [q] in [\[0,100\]], linear interpolation between
    closest ranks; 0.0 on empty input. *)

val min_max : float array -> float * float
(** Smallest and largest sample. @raise Invalid_argument on empty input. *)

val geometric_mean : float array -> float
(** Geometric mean of positive samples; 0.0 on empty input. *)

val of_ints : int array -> float array
(** Convert for use with the functions above. *)

val ratio_summary : float array -> string
(** Human-readable ["mean x (min m, max M)"] summary used in experiment
    tables for speedup ratios. *)
