type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* newest first *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_int_row t row = add_row t (List.map string_of_int row)

let title t = t.title
let columns t = t.columns
let rows t = List.rev t.rows

let widths t =
  let update ws row =
    List.map2 (fun w cell -> max w (String.length cell)) ws row
  in
  List.fold_left update
    (List.map String.length t.columns)
    (List.rev t.rows)

let render t =
  let ws = widths t in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line ch =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) ch) ws) ^ "+"
  in
  let row cells =
    "| " ^ String.concat " | " (List.map2 pad ws cells) ^ " |"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (row t.columns);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (row r);
      Buffer.add_char buf '\n')
    (List.rev t.rows);
  Buffer.add_string buf (line '-');
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let csv_field s =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
  in
  if needs_quote then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let line cells = String.concat "," (List.map csv_field cells) in
  String.concat "\n" (line t.columns :: List.map line (List.rev t.rows))

let cell_float x = Printf.sprintf "%.3f" x

let cell_ratio x = Printf.sprintf "%.2fx" x
