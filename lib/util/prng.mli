(** Deterministic, splittable pseudo-random number generator.

    All randomness in the library flows through this module so that every
    experiment, test and benchmark is reproducible from a single seed.  The
    implementation is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), which is
    fast, has a 64-bit state, and supports cheap splitting into independent
    streams — convenient for generating families of random platforms in
    parallel sweeps without coordinating a shared state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds give
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0..n-1]. *)
