(** Array-backed binary min-heap.

    Used as the event queue of the discrete-event simulator and by the
    list-scheduling baselines.  Elements are ordered by a user-supplied
    comparison fixed at creation time.  All operations are the classic
    O(log n) sift operations; [create] is O(1). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap with the given total order ([cmp a b < 0] means [a] has
    higher priority). *)

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify a copy of the array in O(n). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val drain : 'a t -> 'a list
(** Pop everything, smallest first. *)
