let ceil_div a b =
  if b <= 0 then invalid_arg "Intx.ceil_div: non-positive divisor";
  if a < 0 then invalid_arg "Intx.ceil_div: negative dividend";
  (a + b - 1) / b

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let sum = Array.fold_left ( + ) 0

let max_array a =
  if Array.length a = 0 then invalid_arg "Intx.max_array: empty array";
  Array.fold_left max a.(0) a

let min_array a =
  if Array.length a = 0 then invalid_arg "Intx.min_array: empty array";
  Array.fold_left min a.(0) a

let argmin a =
  if Array.length a = 0 then invalid_arg "Intx.argmin: empty array";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) < a.(!best) then best := i
  done;
  !best

let range lo hi =
  let rec loop i acc = if i < lo then acc else loop (i - 1) (i :: acc) in
  loop hi []

let count_leq a x =
  (* least index holding a value > x, found by bisection *)
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let binary_search_least ~lo ~hi p =
  if lo > hi then None
  else if not (p hi) then None
  else begin
    (* invariant: p holds at [hi'], does not hold below [lo'-1]. *)
    let rec loop lo' hi' =
      if lo' >= hi' then Some hi'
      else begin
        let mid = lo' + ((hi' - lo') / 2) in
        if p mid then loop lo' mid else loop (mid + 1) hi'
      end
    in
    loop lo hi
  end
