let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let ys = sorted xs in
    if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0
  end

let percentile xs q =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let ys = sorted xs in
    let rank = q /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (ys.(lo) *. (1.0 -. frac)) +. (ys.(hi) *. frac)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Msts.Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (xs.(0), xs.(0)) xs

let geometric_mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun a x -> a +. log x) 0.0 xs in
    exp (acc /. float_of_int n)
  end

let of_ints xs = Array.map float_of_int xs

let ratio_summary xs =
  if Array.length xs = 0 then "n/a"
  else begin
    let lo, hi = min_max xs in
    Printf.sprintf "%.3f (min %.3f, max %.3f)" (mean xs) lo hi
  end
