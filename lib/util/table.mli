(** Plain-text and CSV table rendering for the experiment harness.

    Every experiment in [bench/main.ml] prints its results through this
    module so that tables share one visual format and can also be exported
    as CSV for external plotting. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  @raise Invalid_argument if the arity does not match the
    header. *)

val add_int_row : t -> int list -> unit
(** Convenience: a row of integers. *)

val title : t -> string
val columns : t -> string list

val rows : t -> string list list
(** Rows in insertion order — the accessors feed the shared JSON encoder
    so tabular CLI reports render uniformly in both formats. *)

val render : t -> string
(** Box-drawing text rendering with the title on top. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes fields containing commas or quotes). *)

val cell_float : float -> string
(** Standard float formatting used across experiments ("%.3f"). *)

val cell_ratio : float -> string
(** Ratio formatting used for speedups ("%.2fx"). *)
