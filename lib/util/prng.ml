type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

(* Rejection sampling over the top 62 bits keeps the draw unbiased while
   staying inside OCaml's native [int] range. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let choice t a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
