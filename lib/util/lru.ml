(* Hash table + intrusive doubly-linked recency list; the list head is the
   most recently used binding, the tail the eviction candidate. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* towards the head / MRU side *)
  mutable next : ('k, 'v) node option; (* towards the tail / LRU side *)
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  { cap = capacity; table = Hashtbl.create capacity; head = None; tail = None }

let capacity t = t.cap
let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      unlink t node;
      push_front t node;
      Some node.value

let mem t k = Hashtbl.mem t.table k

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      unlink t node;
      push_front t node
  | None ->
      (if Hashtbl.length t.table >= t.cap then
         match t.tail with
         | Some lru ->
             unlink t lru;
             Hashtbl.remove t.table lru.key
         | None -> assert false);
      let node = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k node;
      push_front t node

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk ((node.key, node.value) :: acc) node.next
  in
  walk [] t.head
