(** Bounded least-recently-used cache.

    A mutable map of at most [capacity] bindings; inserting beyond the
    bound evicts the binding that was used (found or re-added) longest
    ago.  Lookups are keyed on the {e full} key — a hash collision inside
    the underlying table still compares complete keys, so two distinct
    keys can never serve each other's values.

    Operations are amortised O(1) (a hash table plus an intrusive
    doubly-linked recency list).  The structure is {e not} synchronised;
    callers that share one cache across domains must bring their own lock
    (see {!Msts_pool.Batch}). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** An empty cache holding at most [capacity] bindings.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int
(** Current number of bindings ([<= capacity] always). *)

val find : ('k, 'v) t -> 'k -> 'v option
(** [find t k] is the cached value, physically the one stored; the binding
    becomes the most recently used. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test that does {e not} touch recency. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace the binding for [k] and make it the most recently
    used; evicts the least recently used binding when the cache is full. *)

val clear : ('k, 'v) t -> unit

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Bindings from most to least recently used (for tests and debugging). *)
