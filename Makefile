# Convenience targets; everything is plain dune underneath.

.PHONY: all build test stress bench examples artifacts clean

all: build

build:
	dune build @all

test:
	dune runtest

stress:
	dune build @stress

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/volunteer_computing.exe
	dune exec examples/layered_network.exe
	dune exec examples/deadline_harvest.exe
	dune exec examples/tree_frontier.exe

# The release artefacts referenced by EXPERIMENTS.md
artifacts:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

clean:
	dune clean
